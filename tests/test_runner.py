"""Tests of the sharded, checkpointed experiment backend.

Covers the on-disk task queue (manifest round-trips, resume guards), the
learner checkpoint/resume path (bit-identical continuation, including
benchmarks with stateful drift noise), equivalence of the sharded backend
with the established process-pool schedule, and — the headline guarantee —
that a ``run_all --paper-run`` invocation killed mid-flight resumes from
its checkpoints and produces results identical to an uninterrupted run.
The registry-level guarantees (every artifact's sharded fold equals its
serial driver, multi-host claim contention) live in ``test_registry.py``.
"""

from __future__ import annotations

import dataclasses
import os
import pathlib
import pickle
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core.comparison import compare_sampling_plans_suite
from repro.core.evaluation import build_test_set
from repro.core.learner import ActiveLearner, LearnerConfig
from repro.core.plans import sequential_plan
from repro.experiments.config import ExperimentScale
from repro.experiments.runner import (
    ExperimentRunner,
    RunManifest,
    RunnerError,
    WorkUnit,
)
from repro.experiments.registry import resolve_artifacts
from repro.spapt.suite import get_benchmark

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _small_scale(benchmarks=("mm",), repetitions=2, max_examples=20):
    return ExperimentScale(
        name="test",
        benchmarks=tuple(benchmarks),
        learner=LearnerConfig(
            n_initial=4,
            seed_observations=4,
            n_candidates=12,
            max_training_examples=max_examples,
            reference_size=8,
            evaluation_interval=5,
            tree_particles=6,
        ),
        repetitions=repetitions,
        test_size=30,
        test_observations=3,
        dataset_configurations=30,
        dataset_observations=4,
        figure1_grid=4,
        seed=2017,
    )


class TestWorkUnitsAndManifest:
    def test_unit_id_is_filesystem_safe_and_stable(self):
        unit = WorkUnit(
            artifact="table1",
            key=("mm", "all-observations", "r003"),
            params={"benchmark": "mm"},
        )
        assert unit.unit_id == "table1--mm--all-observations--r003"
        assert "/" not in unit.unit_id and " " not in unit.unit_id

    def test_unit_record_round_trip(self):
        unit = WorkUnit(
            artifact="table1",
            key=("mm", "r0"),
            params={"benchmark": "mm", "repetition": 0},
        )
        assert WorkUnit.from_record(unit.to_record()) == unit

    def test_manifest_round_trip(self, tmp_path):
        scale = _small_scale(benchmarks=("mm", "adi"))
        specs = resolve_artifacts(["table1"])
        manifest = RunManifest.build(scale, specs)
        path = tmp_path / "manifest.jsonl"
        manifest.write(path, scale, ["table1"])
        loaded = RunManifest.read(path)
        assert loaded == manifest
        assert len(loaded.units) == 2 * 3 * scale.repetitions

    def test_manifest_covers_dependency_closure(self, tmp_path):
        scale = _small_scale()
        runner = ExperimentRunner(tmp_path / "run", scale, artifacts=["figure5"])
        manifest = runner.prepare()
        # figure5 contributes no units but pulls table1's in.
        assert {unit.artifact for unit in manifest.units} == {"table1"}

    def test_prepare_requires_resume_for_existing_run(self, tmp_path):
        runner = ExperimentRunner(tmp_path, _small_scale(), artifacts=["table1"])
        runner.prepare()
        with pytest.raises(RunnerError, match="resume"):
            runner.prepare(resume=False)
        assert runner.prepare(resume=True).units

    def test_prepare_rejects_mismatched_configuration(self, tmp_path):
        ExperimentRunner(tmp_path, _small_scale(), artifacts=["table1"]).prepare()
        other = ExperimentRunner(
            tmp_path, _small_scale(max_examples=25), artifacts=["table1"]
        )
        with pytest.raises(RunnerError, match="different experiment"):
            other.prepare(resume=True)

    def test_prepare_rejects_mismatched_artifacts(self, tmp_path):
        ExperimentRunner(tmp_path, _small_scale(), artifacts=["table1"]).prepare()
        other = ExperimentRunner(tmp_path, _small_scale(), artifacts=["table2"])
        with pytest.raises(RunnerError, match="different experiment"):
            other.prepare(resume=True)

    def test_merge_refuses_partial_runs(self, tmp_path):
        runner = ExperimentRunner(tmp_path, _small_scale(), artifacts=["table1"])
        runner.prepare()
        with pytest.raises(RunnerError, match="incomplete"):
            runner.merge()

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            _small_scale(benchmarks=("nonexistent",))


class TestCheckpointResume:
    @pytest.mark.parametrize("benchmark_name", ["mm", "adi"])
    def test_resume_is_bit_identical(self, benchmark_name):
        """Resuming from a pickled mid-run checkpoint continues the exact
        trajectory — ``adi`` additionally exercises the frequency-drift
        noise state riding along in the checkpoint."""
        learner_config = _small_scale(max_examples=24).learner

        def build(seed=2017):
            benchmark = get_benchmark(benchmark_name)
            test_set = build_test_set(
                benchmark, size=30, observations=3, rng=np.random.default_rng(seed + 1)
            )
            learner = ActiveLearner(
                benchmark,
                plan=sequential_plan(),
                config=learner_config,
                rng=np.random.default_rng(seed),
            )
            return benchmark, test_set, learner

        _, test_set, learner = build()
        baseline = learner.run(test_set)

        blobs = []
        _, test_set, learner = build()
        learner.run(
            test_set,
            checkpoint_interval=6,
            checkpoint_sink=lambda ckpt: blobs.append(
                pickle.dumps(ckpt, protocol=pickle.HIGHEST_PROTOCOL)
            ),
        )
        assert len(blobs) >= 2
        checkpoint = pickle.loads(blobs[1])

        benchmark, test_set, _ = build()  # test set BEFORE restoring drift state
        benchmark.restore_noise_model(checkpoint.noise_model)
        learner = ActiveLearner(
            benchmark,
            plan=sequential_plan(),
            config=learner_config,
            rng=np.random.default_rng(12345),  # must be ignored on resume
        )
        resumed = learner.run(test_set, resume=checkpoint)

        assert len(baseline.curve.points) == len(resumed.curve.points)
        for expected, actual in zip(baseline.curve.points, resumed.curve.points):
            assert expected.cost_seconds == actual.cost_seconds
            assert expected.rmse == actual.rmse
        assert baseline.ledger.total_seconds == resumed.ledger.total_seconds
        assert baseline.observation_counts == resumed.observation_counts

    def test_resume_rejects_wrong_plan(self):
        benchmark = get_benchmark("mm")
        config = _small_scale().learner
        test_set = build_test_set(
            benchmark, size=20, observations=2, rng=np.random.default_rng(1)
        )
        learner = ActiveLearner(
            benchmark, plan=sequential_plan(), config=config,
            rng=np.random.default_rng(0),
        )
        captured = []
        learner.run(test_set, checkpoint_interval=5, checkpoint_sink=captured.append)
        from repro.core.plans import fixed_plan

        other = ActiveLearner(
            benchmark, plan=fixed_plan(35), config=config,
            rng=np.random.default_rng(0),
        )
        with pytest.raises(ValueError, match="plan"):
            other.run(test_set, resume=captured[0])


class TestRunnerEquivalence:
    def test_sharded_run_matches_pool_schedule(self, tmp_path):
        """The merged comparisons equal ``compare_sampling_plans_suite``'s
        pool-mode output bit-for-bit (same per-unit seeding)."""
        scale = _small_scale()
        runner = ExperimentRunner(
            tmp_path / "run", scale, artifacts=["table1"], checkpoint_interval=5
        )
        merged = runner.run(workers=2)["table1"].comparisons
        suite = compare_sampling_plans_suite(
            ["mm"], config=scale.comparison_config(), workers=2
        )
        for plan_name, curve in merged["mm"].curves.items():
            expected = suite["mm"].curves[plan_name]
            assert np.array_equal(curve.costs(), expected.costs())
            assert np.array_equal(curve.errors(), expected.errors())
        assert merged["mm"].lowest_common_rmse == suite["mm"].lowest_common_rmse
        assert merged["mm"].cost_to_reach == suite["mm"].cost_to_reach

    def test_completed_run_resumes_to_identical_merge(self, tmp_path):
        scale = _small_scale(repetitions=1)
        runner = ExperimentRunner(tmp_path / "run", scale, artifacts=["table1"])
        first = runner.run(workers=1)["table1"]
        again = ExperimentRunner(tmp_path / "run", scale, artifacts=["table1"]).run(
            workers=1, resume=True
        )["table1"]
        assert {
            name: comparison.cost_to_reach
            for name, comparison in first.comparisons.items()
        } == {
            name: comparison.cost_to_reach
            for name, comparison in again.comparisons.items()
        }


class TestKillAndResume:
    def test_killed_paper_run_resumes_identically(self, tmp_path):
        """The acceptance pin: a ``run_all --paper-run`` smoke run killed
        mid-flight (SIGKILL, 2 repetitions) and resumed produces a report
        identical to an uninterrupted run."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )

        def command(run_dir, report, resume=False):
            argv = [
                sys.executable,
                "-m",
                "repro.experiments.run_all",
                "--paper-run",
                "--scale",
                "smoke",
                "--repetitions",
                "2",
                "--checkpoint-interval",
                "3",
                "--run-dir",
                str(run_dir),
                "--output",
                str(report),
            ]
            if resume:
                argv.append("--resume")
            return argv

        full_report = tmp_path / "full.txt"
        subprocess.run(
            command(tmp_path / "full", full_report),
            env=env,
            cwd=REPO_ROOT,
            check=True,
            capture_output=True,
            timeout=600,
        )

        killed_dir = tmp_path / "killed"
        killed_report = tmp_path / "killed.txt"
        process = subprocess.Popen(
            command(killed_dir, killed_report),
            env=env,
            cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        results_dir = killed_dir / "results"
        checkpoints_dir = killed_dir / "checkpoints"
        deadline = time.monotonic() + 300
        try:
            # Kill once the run is demonstrably mid-flight: at least two
            # units published (so completed work must be preserved) or an
            # in-flight checkpoint exists (so a unit must resume mid-run).
            while time.monotonic() < deadline:
                if process.poll() is not None:
                    pytest.fail("run finished before it could be killed")
                published = (
                    len(list(results_dir.glob("*.pkl")))
                    if results_dir.is_dir()
                    else 0
                )
                checkpointed = (
                    len(list(checkpoints_dir.glob("*.pkl")))
                    if checkpoints_dir.is_dir()
                    else 0
                )
                if published >= 2 or checkpointed >= 1:
                    break
                time.sleep(0.05)
            process.send_signal(signal.SIGKILL)
        finally:
            process.wait(timeout=60)

        resumed = subprocess.run(
            command(killed_dir, killed_report, resume=True),
            env=env,
            cwd=REPO_ROOT,
            check=True,
            capture_output=True,
            timeout=600,
        )
        assert killed_report.exists(), resumed.stderr.decode()

        def body(path):
            # Drop the header section, which names the run directory.
            return path.read_text("utf-8").split("\n\n", 1)[1]

        assert body(killed_report) == body(full_report)


class TestCheckpointIntegrity:
    """The sha256 sidecar: corrupted/truncated checkpoints are detected
    and the unit restarts cleanly instead of resuming from garbage."""

    def _context(self, tmp_path):
        from repro.experiments.runner import _FileUnitContext

        run_dir = tmp_path / "run"
        for sub in ("checkpoints", "progress", "claims", "log"):
            (run_dir / sub).mkdir(parents=True)
        unit = WorkUnit(artifact="table1", key=("mm", "p", "r000"), params={})
        context = _FileUnitContext(
            run_dir, unit, checkpoint_interval=5, lease_seconds=900.0
        )
        return run_dir, context

    def _journal(self, run_dir):
        path = run_dir / "log" / "events.jsonl"
        return path.read_text("utf-8") if path.exists() else ""

    def test_round_trip_and_corruption_detection(self, tmp_path):
        run_dir, context = self._context(tmp_path)
        context.save_checkpoint({"examples": 7})
        assert context.load_checkpoint() == {"examples": 7}

        checkpoint = run_dir / "checkpoints" / "table1--mm--p--r000.pkl"
        payload = checkpoint.read_bytes()
        checkpoint.write_bytes(payload[: len(payload) // 2])  # truncated
        assert context.load_checkpoint() is None
        assert "checkpoint-corrupt" in self._journal(run_dir)
        # The corrupt pair is discarded so the unit restarts from scratch.
        assert not checkpoint.exists()
        assert not checkpoint.with_suffix(".pkl.sha256").exists()

    def test_kill_between_renames_is_detected(self, tmp_path):
        """A kill after the checkpoint rename but before the sidecar
        rename leaves a new checkpoint under the old digest — detected."""
        import pickle

        from repro.experiments.runner import _atomic_write_bytes

        run_dir, context = self._context(tmp_path)
        context.save_checkpoint({"examples": 7})
        checkpoint = run_dir / "checkpoints" / "table1--mm--p--r000.pkl"
        _atomic_write_bytes(checkpoint, pickle.dumps({"examples": 14}))
        assert context.load_checkpoint() is None
        assert "checkpoint-corrupt" in self._journal(run_dir)

    def test_kill_before_rename_keeps_previous_checkpoint(self, tmp_path):
        """A kill inside the tmp-write window leaves the previous good
        pair intact (plus a stray tmp) and the unit resumes from it."""
        run_dir, context = self._context(tmp_path)
        context.save_checkpoint({"examples": 7})
        checkpoint = run_dir / "checkpoints" / "table1--mm--p--r000.pkl"
        torn = checkpoint.with_name(f"{checkpoint.name}.12345.tmp")
        torn.write_bytes(b"torn half-written checkpoint")
        assert context.load_checkpoint() == {"examples": 7}
        assert "checkpoint-corrupt" not in self._journal(run_dir)

    def test_sidecarless_checkpoint_loads_unverified(self, tmp_path):
        run_dir, context = self._context(tmp_path)
        context.save_checkpoint({"examples": 7})
        (run_dir / "checkpoints" / "table1--mm--p--r000.pkl.sha256").unlink()
        assert context.load_checkpoint() == {"examples": 7}


class TestJournalRecovery:
    def _journal(self, tmp_path, payload):
        run_dir = tmp_path / "run"
        (run_dir / "log").mkdir(parents=True)
        path = run_dir / "log" / "events.jsonl"
        path.write_bytes(payload)
        return run_dir, path

    def test_torn_tail_is_truncated(self, tmp_path):
        from repro.experiments.runner import _recover_journal

        good = b'{"event": "claim", "unit": "a"}\n{"event": "publish", "unit": "a"}\n'
        run_dir, path = self._journal(tmp_path, good + b'{"event": "cl')
        _recover_journal(run_dir)
        assert path.read_bytes() == good

    def test_healthy_journal_is_untouched(self, tmp_path):
        from repro.experiments.runner import _recover_journal

        good = b'{"event": "claim", "unit": "a"}\n'
        run_dir, path = self._journal(tmp_path, good)
        _recover_journal(run_dir)
        assert path.read_bytes() == good

    def test_missing_or_empty_journal_is_fine(self, tmp_path):
        from repro.experiments.runner import _recover_journal

        run_dir, path = self._journal(tmp_path, b"")
        _recover_journal(run_dir)
        assert path.read_bytes() == b""
        _recover_journal(tmp_path / "nonexistent")


_KILL_WINDOW_DRIVER = """\
import os
import signal
import sys

import repro.experiments.runner as runner

MODE = sys.argv[1]
real = runner._atomic_write_bytes
counts = {"pkl": 0, "sha": 0}


def patched(path, payload):
    if path.parent.name == "checkpoints":
        if path.name.endswith(".pkl.sha256"):
            counts["sha"] += 1
            if MODE == "between" and counts["sha"] == 2:
                # The second checkpoint's .pkl rename just committed; die
                # before its sidecar rename.
                os.kill(os.getpid(), signal.SIGKILL)
        elif path.name.endswith(".pkl"):
            counts["pkl"] += 1
            if MODE == "tmp" and counts["pkl"] == 2:
                # Die inside the tmp-write window of the second
                # checkpoint: leave a torn tmp, never rename.
                torn = path.with_name(f"{path.name}.{os.getpid()}.tmp")
                with open(torn, "wb") as handle:
                    handle.write(payload[: max(1, len(payload) // 2)])
                os.kill(os.getpid(), signal.SIGKILL)
    real(path, payload)


runner._atomic_write_bytes = patched

from repro.experiments.run_all import main

sys.exit(main(sys.argv[2:]))
"""


class TestKillInCheckpointWindow:
    """SIGKILL inside the checkpoint tmp+rename window: --resume restarts
    from the previous good checkpoint (or cleanly from scratch when the
    kill landed between the checkpoint and sidecar renames) and the final
    report is identical to an uninterrupted run."""

    @pytest.mark.parametrize("mode", ["tmp", "between"])
    def test_resume_after_kill_in_window_is_identical(self, tmp_path, mode):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )

        def arguments(run_dir, report, resume=False):
            argv = [
                "--paper-run",
                "--scale",
                "smoke",
                "--only",
                "table1",
                "--repetitions",
                "1",
                "--checkpoint-interval",
                "3",
                "--run-dir",
                str(run_dir),
                "--output",
                str(report),
            ]
            if resume:
                argv.append("--resume")
            return argv

        clean_report = tmp_path / "clean.txt"
        subprocess.run(
            [sys.executable, "-m", "repro.experiments.run_all"]
            + arguments(tmp_path / "clean", clean_report),
            env=env,
            cwd=REPO_ROOT,
            check=True,
            capture_output=True,
            timeout=600,
        )

        driver = tmp_path / "driver.py"
        driver.write_text(_KILL_WINDOW_DRIVER, "utf-8")
        killed_dir = tmp_path / "killed"
        killed_report = tmp_path / "killed.txt"
        process = subprocess.run(
            [sys.executable, str(driver), mode]
            + arguments(killed_dir, killed_report),
            env=env,
            cwd=REPO_ROOT,
            capture_output=True,
            timeout=600,
        )
        assert process.returncode == -signal.SIGKILL, process.stderr.decode()
        # The kill landed after the first good checkpoint pair.
        assert list((killed_dir / "checkpoints").glob("*.pkl"))

        subprocess.run(
            [sys.executable, "-m", "repro.experiments.run_all"]
            + arguments(killed_dir, killed_report, resume=True),
            env=env,
            cwd=REPO_ROOT,
            check=True,
            capture_output=True,
            timeout=600,
        )

        def body(path):
            return path.read_text("utf-8").split("\n\n", 1)[1]

        assert body(killed_report) == body(clean_report)
        journal = (killed_dir / "log" / "events.jsonl").read_text("utf-8")
        if mode == "between":
            # The mismatched pair was detected and the unit restarted.
            assert "checkpoint-corrupt" in journal
        else:
            # The previous good pair verified and the unit resumed from it.
            assert "checkpoint-corrupt" not in journal


class TestClaimOrder:
    """Per-host deterministic permutation of the claim walk (contention)."""

    def _runner(self, tmp_path, name="run"):
        return ExperimentRunner(
            tmp_path / name, _small_scale(repetitions=6), artifacts=["table1"]
        )

    def test_order_is_a_deterministic_permutation(self, tmp_path):
        runner = self._runner(tmp_path)
        units = list(runner.prepare().units)
        assert len(units) >= 6
        once = [u.unit_id for u in runner._claim_order(units)]
        again = [u.unit_id for u in runner._claim_order(units)]
        assert once == again
        assert sorted(once) == sorted(u.unit_id for u in units)

    def test_hosts_walk_different_orders(self, tmp_path):
        runner = self._runner(tmp_path)
        units = list(runner.prepare().units)
        peer = ExperimentRunner(
            tmp_path / "run", _small_scale(repetitions=6), artifacts=["table1"]
        )
        # Two runners in one process share a host tag; pin distinct seeds
        # the way distinct hosts would derive them.
        runner._claim_order_seed = 1
        peer._claim_order_seed = 2
        ours = [u.unit_id for u in runner._claim_order(units)]
        theirs = [u.unit_id for u in peer._claim_order(units)]
        assert ours != theirs
        assert sorted(ours) == sorted(theirs)

    def test_permuted_orders_reduce_claim_collisions(self, tmp_path):
        """Two hosts walking one queue: a shared claim order collides on
        every unit, per-host permutations mostly avoid each other.

        The simulation interleaves two hosts attempting ``_try_claim``
        round-robin over their respective orders — exactly the race the
        runner's cheap ``_unit_is_open`` pre-filter cannot arbitrate —
        and counts O_EXCL losses.
        """
        from repro.experiments.runner import _try_claim

        runner = self._runner(tmp_path)
        units = list(runner.prepare().units)
        host_a = self._runner(tmp_path, name="a")
        host_b = self._runner(tmp_path, name="b")

        def simulate(seed_a, seed_b, base_dir):
            # _try_claim journals to <run_dir>/log, two levels up from the
            # claim file, so lay the simulated queue out like a run dir.
            claims_dir = base_dir / "claims"
            claims_dir.mkdir(parents=True, exist_ok=True)
            (base_dir / "log").mkdir(parents=True, exist_ok=True)
            host_a._claim_order_seed = seed_a
            host_b._claim_order_seed = seed_b
            collisions = 0
            while True:
                # Both hosts snapshot the open set at the same instant —
                # the window _unit_is_open cannot arbitrate — and race for
                # the head of their respective orderings.
                open_units = [
                    u
                    for u in units
                    if not (claims_dir / f"{u.unit_id}.claim").exists()
                ]
                if not open_units:
                    return collisions
                picks = (
                    host_a._claim_order(open_units)[0],
                    host_b._claim_order(open_units)[0],
                )
                for pick in picks:
                    claim = claims_dir / f"{pick.unit_id}.claim"
                    if not _try_claim(claim, lease_seconds=900.0):
                        collisions += 1

        shared = simulate(7, 7, tmp_path / "queue_shared")
        permuted = simulate(1, 2, tmp_path / "queue_permuted")

        # A shared order races for the same head every round — one loser
        # per unit; per-host permutations mostly pick different heads.
        assert shared == len(units)
        assert permuted < shared
