"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir.expr import Var
from repro.ir.loopnest import ArrayDecl, ArrayRef, Kernel, Loop, Statement
from repro.measurement.noise import NoiseModel
from repro.spapt.suite import get_benchmark


@pytest.fixture
def rng():
    """A deterministic random generator for every test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def mm_benchmark():
    """The mm SPAPT benchmark (session-scoped: construction is not free)."""
    return get_benchmark("mm")


@pytest.fixture(scope="session")
def adi_benchmark():
    return get_benchmark("adi")


@pytest.fixture
def tiny_kernel():
    """A small, perfectly nested 2-D kernel for IR/transform tests.

    for i in [0, N):
        for j in [0, N):
            C[i][j] += A[i][j] * B[j][i]
    """
    statement = Statement(
        writes=(ArrayRef("C", (Var("i"), Var("j"))),),
        reads=(
            ArrayRef("C", (Var("i"), Var("j"))),
            ArrayRef("A", (Var("i"), Var("j"))),
            ArrayRef("B", (Var("j"), Var("i"))),
        ),
        flops=2,
        label="update",
    )
    inner = Loop(var="j", lower=0, upper="N", body=(statement,))
    outer = Loop(var="i", lower=0, upper="N", body=(inner,))
    return Kernel(
        name="tiny",
        sizes={"N": 64},
        arrays=(
            ArrayDecl("A", ("N", "N")),
            ArrayDecl("B", ("N", "N")),
            ArrayDecl("C", ("N", "N")),
        ),
        loops=(outer,),
    )


class StubProgram:
    """A minimal TunableProgram used by profiler/learner unit tests.

    The "configuration" is a pair ``(a, b)`` with runtime ``1 + 0.1*a + 0.01*b``
    seconds, compile time 0.5 s and no noise unless a model is supplied.
    """

    name = "stub"

    def __init__(self, noise_model: NoiseModel | None = None) -> None:
        self._noise = noise_model if noise_model is not None else NoiseModel.noiseless()

    def true_runtime(self, configuration):
        a, b = configuration
        return 1.0 + 0.1 * a + 0.01 * b

    def compile_time(self, configuration):
        return 0.5

    def noise_sensitivity(self, configuration):
        return 0.0

    @property
    def noise_model(self):
        return self._noise


@pytest.fixture
def stub_program():
    return StubProgram()
