"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from _helpers import StubProgram

from repro.ir.expr import Var
from repro.ir.loopnest import ArrayDecl, ArrayRef, Kernel, Loop, Statement
from repro.spapt.suite import get_benchmark


@pytest.fixture
def rng():
    """A deterministic random generator for every test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def mm_benchmark():
    """The mm SPAPT benchmark (session-scoped: construction is not free)."""
    return get_benchmark("mm")


@pytest.fixture(scope="session")
def adi_benchmark():
    return get_benchmark("adi")


@pytest.fixture
def tiny_kernel():
    """A small, perfectly nested 2-D kernel for IR/transform tests.

    for i in [0, N):
        for j in [0, N):
            C[i][j] += A[i][j] * B[j][i]
    """
    statement = Statement(
        writes=(ArrayRef("C", (Var("i"), Var("j"))),),
        reads=(
            ArrayRef("C", (Var("i"), Var("j"))),
            ArrayRef("A", (Var("i"), Var("j"))),
            ArrayRef("B", (Var("j"), Var("i"))),
        ),
        flops=2,
        label="update",
    )
    inner = Loop(var="j", lower=0, upper="N", body=(statement,))
    outer = Loop(var="i", lower=0, upper="N", body=(inner,))
    return Kernel(
        name="tiny",
        sizes={"N": 64},
        arrays=(
            ArrayDecl("A", ("N", "N")),
            ArrayDecl("B", ("N", "N")),
            ArrayDecl("C", ("N", "N")),
        ),
        loops=(outer,),
    )


@pytest.fixture
def stub_program():
    return StubProgram()
