"""Tests for the SPAPT kernels, the benchmark suite and dataset generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ir.analysis import dynamic_flop_count, max_loop_depth
from repro.spapt.dataset import generate_dataset
from repro.spapt.kernels import KERNEL_BUILDERS
from repro.spapt.suite import (
    BENCHMARK_SPECS,
    PAPER_SEARCH_SPACE_SIZES,
    SpaptBenchmark,
    benchmark_names,
    get_benchmark,
    load_suite,
)


class TestKernels:
    def test_all_eleven_kernels_build(self):
        assert set(KERNEL_BUILDERS) == set(PAPER_SEARCH_SPACE_SIZES)
        for name, builder in KERNEL_BUILDERS.items():
            kernel = builder()
            assert kernel.name == name
            assert dynamic_flop_count(kernel) > 0

    def test_loop_names_are_unique_within_each_kernel(self):
        for builder in KERNEL_BUILDERS.values():
            kernel = builder()
            names = kernel.loop_names()
            assert len(names) == len(set(names)), kernel.name

    def test_expected_depths(self):
        assert max_loop_depth(KERNEL_BUILDERS["mm"]()) == 3
        assert max_loop_depth(KERNEL_BUILDERS["mvt"]()) == 2
        assert max_loop_depth(KERNEL_BUILDERS["lu"]()) == 3
        assert max_loop_depth(KERNEL_BUILDERS["correlation"]()) == 3

    def test_kernel_sizes_are_configurable(self):
        small = KERNEL_BUILDERS["mm"](n=16)
        assert small.sizes["N"] == 16


class TestBenchmarkSpecs:
    def test_eleven_benchmarks(self):
        assert len(BENCHMARK_SPECS) == 11
        assert benchmark_names() == sorted(PAPER_SEARCH_SPACE_SIZES)

    def test_parameters_reference_existing_loops(self):
        for spec in BENCHMARK_SPECS.values():
            kernel = spec.build_kernel()
            loop_vars = set(kernel.loop_names())
            for parameter in spec.parameters:
                assert parameter.loop_var in loop_vars, (spec.name, parameter.name)

    def test_noise_calibration_ordering(self):
        """correlation must be far noisier than mvt, as in Table 2."""
        quiet = BENCHMARK_SPECS["mvt"].noise_profile
        noisy = BENCHMARK_SPECS["correlation"].noise_profile
        assert noisy.layout_sigma_high > quiet.layout_sigma_high * 20
        assert noisy.spike_probability > quiet.spike_probability


class TestSpaptBenchmark:
    def test_get_benchmark_unknown_name(self):
        with pytest.raises(KeyError):
            get_benchmark("unknown")

    def test_search_space_sizes_close_to_paper(self):
        """Reproduction spaces are within ~1.5 orders of magnitude of Table 1."""
        for name in benchmark_names():
            benchmark = get_benchmark(name)
            ratio = benchmark.search_space.size / benchmark.paper_search_space_size
            assert 10 ** -1.5 < ratio < 10 ** 1.5, (name, ratio)

    def test_default_runtime_matches_target(self, mm_benchmark):
        spec = BENCHMARK_SPECS["mm"]
        default = mm_benchmark.search_space.default_configuration()
        assert mm_benchmark.true_runtime(default) == pytest.approx(
            spec.target_runtime_seconds, rel=1e-6
        )

    def test_runtimes_positive_and_cached(self, mm_benchmark, rng):
        configuration = mm_benchmark.search_space.random_configuration(rng)
        first = mm_benchmark.true_runtime(configuration)
        second = mm_benchmark.true_runtime(list(configuration))
        assert first == second
        assert first > 0

    def test_compile_time_and_sensitivity_bounds(self, mm_benchmark, rng):
        for _ in range(10):
            configuration = mm_benchmark.search_space.random_configuration(rng)
            assert mm_benchmark.compile_time(configuration) > 0
            assert 0.0 <= mm_benchmark.noise_sensitivity(configuration) <= 1.0

    def test_features_shape(self, mm_benchmark, rng):
        configurations = [
            mm_benchmark.search_space.random_configuration(rng) for _ in range(4)
        ]
        matrix = mm_benchmark.features_many(configurations)
        assert matrix.shape == (4, mm_benchmark.search_space.dimensions)

    def test_invalid_configuration_rejected(self, mm_benchmark):
        bad = tuple([999] * mm_benchmark.search_space.dimensions)
        with pytest.raises(ValueError):
            mm_benchmark.true_runtime(bad)

    def test_response_surface_is_not_flat(self, mm_benchmark, rng):
        runtimes = [
            mm_benchmark.true_runtime(mm_benchmark.search_space.random_configuration(rng))
            for _ in range(50)
        ]
        assert max(runtimes) > min(runtimes) * 1.5

    def test_tuning_can_beat_the_default(self, mm_benchmark, rng):
        """Some configurations are faster than -O2 alone (the point of autotuning)."""
        default = mm_benchmark.true_runtime(
            mm_benchmark.search_space.default_configuration()
        )
        best = min(
            mm_benchmark.true_runtime(mm_benchmark.search_space.random_configuration(rng))
            for _ in range(100)
        )
        assert best < default

    def test_load_suite_subset(self):
        suite = load_suite(["mm", "lu"])
        assert [b.name for b in suite] == ["mm", "lu"]
        assert all(isinstance(b, SpaptBenchmark) for b in suite)

    def test_adi_unroll_plateau_climb_plateau(self, adi_benchmark):
        """The Figure 2 response: flat, then a climb, then a higher plateau."""
        space = adi_benchmark.search_space
        names = [p.name for p in space.parameters]
        index = names.index("U_i1")
        base = list(space.default_configuration())

        def runtime(factor):
            configuration = list(base)
            configuration[index] = factor
            return adi_benchmark.true_runtime(tuple(configuration))

        low = runtime(1)
        mid = runtime(12)
        high = runtime(30)
        assert runtime(2) == pytest.approx(low, rel=0.05)  # plateau at the start
        assert mid > low * 1.05  # the climb has begun
        assert high > low * 1.15  # high plateau is clearly above the low one
        assert high == pytest.approx(runtime(28), rel=0.05)  # and it is a plateau


class TestDataset:
    @pytest.fixture(scope="class")
    def dataset(self):
        benchmark = get_benchmark("mm")
        return generate_dataset(
            benchmark,
            configurations=40,
            observations_per_configuration=6,
            rng=np.random.default_rng(3),
        )

    def test_size_and_uniqueness(self, dataset):
        assert len(dataset) == 40
        assert len(set(dataset.configurations())) == 40

    def test_entries_are_consistent(self, dataset):
        entry = dataset[0]
        assert len(entry.observations) == 6
        assert entry.mean_runtime == pytest.approx(np.mean(entry.observations))
        assert entry.variance >= 0
        assert entry.true_runtime > 0
        assert 0.0 <= entry.noise_sensitivity <= 1.0

    def test_arrays_have_matching_shapes(self, dataset):
        assert dataset.mean_runtimes().shape == (40,)
        assert dataset.variances().shape == (40,)
        assert dataset.features().shape[0] == 40

    def test_split_partitions_everything(self, dataset):
        split = dataset.split(test_fraction=0.25, rng=np.random.default_rng(0))
        assert len(split.train_indices) + len(split.test_indices) == 40
        assert not (set(split.train_indices) & set(split.test_indices))
        assert len(split.test_indices) == 10

    def test_split_rejects_bad_fraction(self, dataset):
        with pytest.raises(ValueError):
            dataset.split(test_fraction=0.0)
        with pytest.raises(ValueError):
            dataset.split(test_fraction=1.0)

    def test_subset(self, dataset):
        subset = dataset.subset([0, 1, 2])
        assert len(subset) == 3
        assert subset[0].configuration == dataset[0].configuration

    def test_generate_dataset_validation(self):
        benchmark = get_benchmark("mm")
        with pytest.raises(ValueError):
            generate_dataset(benchmark, configurations=0)
        with pytest.raises(ValueError):
            generate_dataset(benchmark, configurations=5, observations_per_configuration=0)

    def test_mean_near_true_runtime_for_many_observations(self):
        benchmark = get_benchmark("lu")  # the quietest benchmarks
        dataset = generate_dataset(
            benchmark,
            configurations=10,
            observations_per_configuration=20,
            rng=np.random.default_rng(5),
        )
        for entry in dataset.entries:
            assert entry.mean_runtime == pytest.approx(entry.true_runtime, rel=0.1)
