"""Tolerance suite for ``DynamicTreeConfig(float_mode="fast")``.

Fast mode trades the bit-exact float contract (sequential ``cumsum``
reductions, scalar ``math`` transcendental maps) for fused ``np.sum`` /
``einsum`` reductions and numpy's SIMD transcendentals.  The deviation
budget is documented in ``docs/architecture.md`` and pinned here as
:data:`FAST_MODE_RTOL`: across random seeded update sequences, fast-mode
reweight log-weights, predictions and ALC scores must stay within that
relative tolerance of the bit-exact path, and the sampled *decisions*
(grow/prune/stay moves, hence the tree shapes) must not fork at all for
generic data — a fork requires a draw landing within ~1 ulp of a score
boundary, which the property test would surface as a macroscopic
prediction divergence.

Both kernel backends run: ``"numpy"`` and ``"numba"`` (the latter
exercises the dispatch path — njit kernels where numba is installed, the
NumPy fallback otherwise).  ``float_mode`` must also survive session
pickling, since checkpointed paper runs resume from pickles.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.evaluation import build_test_set
from repro.core.learner import ActiveLearner, LearnerConfig
from repro.core.plans import sequential_plan
from repro.measurement.broker import ProfilerBroker
from repro.measurement.profiler import Profiler
from repro.models.compiled_kernels import get_kernels
from repro.models.dynamic_tree import DynamicTreeConfig, DynamicTreeRegressor
from repro.spapt.suite import get_benchmark

#: Documented fast-mode deviation budget (see docs/architecture.md,
#: "float_mode"): per-update relative deviation of log-weights, predictions
#: and ALC scores between ``float_mode="fast"`` and the bit-exact path.
#: The raw per-reduction deviation is a few ulps (~1e-15 relative); 1e-9
#: leaves six orders of magnitude of headroom for accumulation over a
#: trajectory while still catching any real algorithmic divergence.
FAST_MODE_RTOL = 1e-9

BACKENDS = ["numpy", "numba"]


def _paired_models(seed, backend, particles=12, dims=3):
    """The same seeded model in exact and fast float mode."""
    shared = dict(
        n_particles=particles,
        resample_threshold=0.9,
        backend=backend,
    )
    exact = DynamicTreeRegressor(
        DynamicTreeConfig(float_mode="exact", **shared),
        rng=np.random.default_rng(seed),
    )
    fast = DynamicTreeRegressor(
        DynamicTreeConfig(float_mode="fast", **shared),
        rng=np.random.default_rng(seed),
    )
    rng = np.random.default_rng(seed + 1)
    X = rng.uniform(-2, 2, size=(3 * particles // 2, dims))
    y = (
        np.where(X[:, 0] > 0.3, 2.0, -1.0)
        + 0.4 * X[:, 1]
        + rng.normal(0, 0.3, size=X.shape[0])
    )
    exact.fit(X, y)
    fast.fit(X, y)
    return exact, fast, rng


def _reweight_log_weights(model, x, y):
    """The per-particle reweight log-weights the next update would use."""
    config = model._config
    kernels = get_kernels(config.backend, config.float_mode == "fast")
    forest = model._ensure_forest()
    gids, _, _, _ = kernels.route_update(
        forest.split_dim,
        forest.split_value,
        forest.left,
        forest.right,
        forest.leaf_slot,
        forest.roots,
        x,
    )
    return kernels.reweight_log_weights(forest.caches.data, gids, y)


class TestFastModeTolerance:
    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=12, deadline=None, derandomize=True)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        dims=st.integers(min_value=2, max_value=4),
        n_updates=st.integers(min_value=4, max_value=10),
    )
    def test_fast_trajectory_within_rtol_of_exact(
        self, backend, seed, dims, n_updates
    ):
        """Random update sequences: decisions identical, floats within budget.

        After every update the two models must have made the same
        grow/prune/stay decisions (identical per-particle leaf counts) and
        agree on reweight log-weights, predictions and ALC scores within
        :data:`FAST_MODE_RTOL`.
        """
        exact, fast, rng = _paired_models(seed, backend, dims=dims)
        probes = rng.uniform(-2, 2, size=(8, dims))
        for step in range(n_updates):
            x = rng.uniform(-2, 2, size=dims)
            y = (
                (2.0 if x[0] > 0.3 else -1.0)
                + 0.4 * x[1]
                + rng.normal(0, 0.3)
            )
            lw_exact = _reweight_log_weights(exact, x, float(y))
            lw_fast = _reweight_log_weights(fast, x, float(y))
            np.testing.assert_allclose(
                lw_fast, lw_exact, rtol=FAST_MODE_RTOL, atol=FAST_MODE_RTOL,
                err_msg=f"log-weights diverged at step {step}",
            )
            exact.update(x, float(y))
            fast.update(x, float(y))
            assert fast.leaf_counts() == exact.leaf_counts(), (
                f"move decisions forked at step {step}"
            )
            pe = exact.predict(probes)
            pf = fast.predict(probes)
            np.testing.assert_allclose(
                pf.mean, pe.mean, rtol=FAST_MODE_RTOL, atol=FAST_MODE_RTOL,
                err_msg=f"means diverged at step {step}",
            )
            np.testing.assert_allclose(
                pf.variance, pe.variance,
                rtol=FAST_MODE_RTOL, atol=FAST_MODE_RTOL,
                err_msg=f"variances diverged at step {step}",
            )
        alc_exact = exact.expected_average_variance(probes[:4], probes[4:])
        alc_fast = fast.expected_average_variance(probes[:4], probes[4:])
        np.testing.assert_allclose(
            alc_fast, alc_exact, rtol=FAST_MODE_RTOL, atol=FAST_MODE_RTOL
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_exact_mode_stays_bit_identical(self, backend):
        """The default mode is untouched by the fast-mode plumbing: two
        exact-mode models with the same seed are bit-equal (the full
        bit-identity contract lives in tests/test_batched_update.py)."""
        a, _, rng = _paired_models(101, backend)
        b, _, _ = _paired_models(101, backend)
        probes = rng.uniform(-2, 2, size=(6, 3))
        pa, pb = a.predict(probes), b.predict(probes)
        assert pa.mean.tolist() == pb.mean.tolist()
        assert pa.variance.tolist() == pb.variance.tolist()

    def test_config_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="float_mode"):
            DynamicTreeConfig(float_mode="sloppy")
        with pytest.raises(ValueError, match="tree_float_mode"):
            LearnerConfig(tree_float_mode="sloppy")


class TestFloatModePickling:
    def test_float_mode_round_trips_through_session_pickle(self):
        """A fast-mode session keeps its float mode across pickle/unpickle
        and keeps learning afterwards."""
        mm = get_benchmark("mm")
        config = LearnerConfig(
            n_initial=4,
            seed_observations=6,
            n_candidates=12,
            max_training_examples=20,
            reference_size=8,
            tree_particles=10,
            tree_float_mode="fast",
        )
        learner = ActiveLearner(
            mm,
            plan=sequential_plan(3),
            config=config,
            rng=np.random.default_rng(5),
        )
        test_set = build_test_set(mm, size=10, observations=3,
                                  rng=np.random.default_rng(6))
        session = learner.start_session(test_set)
        broker = ProfilerBroker(Profiler(mm, rng=session.rng))
        while session.training_examples < config.n_initial + 2:
            session.tell(broker.measure(session.ask()))
        assert session.model is not None
        assert session.model._config.float_mode == "fast"

        revived = pickle.loads(
            pickle.dumps(session, protocol=pickle.HIGHEST_PROTOCOL)
        )
        revived.attach_benchmark(mm)
        assert revived._config.tree_float_mode == "fast"
        assert revived.model._config.float_mode == "fast"
        broker2 = ProfilerBroker(Profiler(mm, rng=revived.rng))
        before = revived.training_examples
        revived.tell(broker2.measure(revived.ask()))
        assert revived.training_examples == before + 1
