"""Executable-documentation check: the README quickstart must actually run.

Extracts every fenced ``bash`` command from README.md's Quickstart section
and executes it from the repository root (the commands are written to be
smoke-scale, so the whole section finishes in about a minute).  This is
what ``make docs-check`` runs; a README edit that breaks a command — a
renamed flag, a moved module, a stale path — fails the suite instead of
rotting silently.

Only the Quickstart section's ``bash``-tagged fences are executed; other
sections document long-running commands (the full paper run) in plain
fences precisely so they are *not* run here.
"""

from __future__ import annotations

import pathlib
import re
import subprocess

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
README = REPO_ROOT / "README.md"


def quickstart_commands():
    """Every command line inside a ```bash fence of the Quickstart section."""
    text = README.read_text("utf-8")
    match = re.search(r"^## Quickstart\n(.*?)(?=^## )", text, re.M | re.S)
    assert match, "README.md has no Quickstart section"
    section = match.group(1)
    commands = []
    for block in re.findall(r"```bash\n(.*?)```", section, re.S):
        for line in block.strip().splitlines():
            line = line.strip()
            if line and not line.startswith("#"):
                commands.append(line)
    return commands


COMMANDS = quickstart_commands()


def test_quickstart_section_has_commands():
    assert len(COMMANDS) >= 3, COMMANDS


@pytest.mark.parametrize(
    "command", COMMANDS, ids=[c.split("python", 1)[-1][:60] for c in COMMANDS]
)
def test_quickstart_command_runs(command, tmp_path):
    completed = subprocess.run(
        command,
        shell=True,
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, (
        f"README quickstart command failed:\n  {command}\n"
        f"stdout:\n{completed.stdout[-2000:]}\n"
        f"stderr:\n{completed.stderr[-2000:]}"
    )
