"""Property-based hardening of :class:`ReplayTrace` concurrent appends.

The trace's crash/concurrency contract, fuzzed with hypothesis:

* **interleaved writers** — any interleaving of appends from several
  :class:`ReplayTrace` instances over one directory yields the same
  fresh-reader view: the first record in *file order* wins per key, and
  lookups during the run never return a record that was not written;
* **torn tails** — a partial line (a recorder killed mid-write, or an
  append caught in flight) is deferred until its newline arrives, never
  crashes a lookup, and never corrupts the visibility of records on
  *other* lines.  A record glued onto a torn fragment by a concurrent
  ``O_APPEND`` write shares the fragment's line and is sacrificed — the
  documented cost — but every record on its own line stays servable.

The deterministic model mirrors the file format: a record is visible to a
fresh reader iff its line starts at file start or right after a newline.
"""

from __future__ import annotations

import json
import os
import tempfile

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.measurement.broker import MeasurementResult, ReplayTrace  # noqa: E402

BENCH = "mm"
UNIT = "shared-unit"
CONFIGS = ((0,), (1,), (2,))
PRIORS = (0, 1)

#: A torn fragment: valid JSON prefix, no newline, never parseable alone
#: or as a prefix of another record's line.
TORN = b'{"unit": "shared-unit", "configuration": [9'


def _append_raw(directory, payload: bytes) -> None:
    fd = os.open(
        os.path.join(directory, f"{BENCH}.jsonl"),
        os.O_CREAT | os.O_WRONLY | os.O_APPEND,
        0o644,
    )
    try:
        os.write(fd, payload)
    finally:
        os.close(fd)


def _record(trace: ReplayTrace, config, prior, runtime: float) -> None:
    trace.record(
        BENCH,
        config,
        prior,
        MeasurementResult(configuration=tuple(config), runtimes=(runtime,)),
        unit=UNIT,
    )


_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("record"),
            st.integers(min_value=0, max_value=1),  # writer index
            st.sampled_from(CONFIGS),
            st.sampled_from(PRIORS),
            st.integers(min_value=1, max_value=90).map(lambda v: v / 10.0),
        ),
        st.tuples(st.just("tear")),
        st.tuples(
            st.just("lookup"), st.sampled_from(CONFIGS), st.sampled_from(PRIORS)
        ),
    ),
    min_size=1,
    max_size=25,
)


class TestConcurrentAppendFuzz:
    @settings(max_examples=60, deadline=None)
    @given(ops=_ops)
    def test_interleaved_writers_with_torn_tails(self, ops):
        with tempfile.TemporaryDirectory() as directory:
            writers = (ReplayTrace(directory), ReplayTrace(directory))
            reader = ReplayTrace(directory)
            # Model: first *visible* record per key, in file order.  A
            # record appended while a torn fragment dangles shares its
            # line and is never visible to any file reader.
            expected: dict = {}
            reader_saw: dict = {}
            pending_tear = False
            for op in ops:
                if op[0] == "record":
                    _, writer, config, prior, runtime = op
                    _record(writers[writer], config, prior, float(runtime))
                    if pending_tear:
                        pending_tear = False  # glued: the record is lost
                    else:
                        expected.setdefault((config, prior), float(runtime))
                elif op[0] == "tear":
                    _append_raw(directory, TORN)
                    pending_tear = True
                else:
                    _, config, prior = op
                    found = reader.lookup(BENCH, config, prior, unit=UNIT)
                    if found is not None:
                        # Never a phantom: only ever the first visible
                        # record for the key (stable once seen).
                        assert found["runtimes"] == [expected[(config, prior)]]
                        reader_saw[(config, prior)] = found["runtimes"][0]

            # A fresh reader agrees with the model on every key.
            fresh = ReplayTrace(directory)
            for config in CONFIGS:
                for prior in PRIORS:
                    found = fresh.lookup(BENCH, config, prior, unit=UNIT)
                    want = expected.get((config, prior))
                    if want is None:
                        assert found is None
                    else:
                        assert found is not None
                        assert found["runtimes"] == [want]
                        shared = fresh.lookup_shared(BENCH, config, prior)
                        assert shared and shared[0]["runtimes"] == [want]
            # The mid-run reader's answers were the final answers: first
            # wins, and the first visible record never changes.
            for key, runtime in reader_saw.items():
                assert expected[key] == runtime

    @settings(max_examples=30, deadline=None)
    @given(
        prefix=st.integers(min_value=1, max_value=10),
        config=st.sampled_from(CONFIGS),
        prior=st.sampled_from(PRIORS),
    )
    def test_torn_tail_is_deferred_until_its_newline_arrives(
        self, prefix, config, prior
    ):
        """A slow writer's partial line is invisible but not consumed:
        once the rest of the line lands, the record becomes servable."""
        with tempfile.TemporaryDirectory() as directory:
            record = {
                "unit": UNIT,
                "artifact": None,
                "configuration": list(config),
                "prior": prior,
                "runtimes": [1.25],
                "compile": [],
                "rng_state": None,
                "noise_state": None,
            }
            line = (json.dumps(record) + "\n").encode("utf-8")
            cut = min(prefix, len(line) - 2)
            _append_raw(directory, line[:cut])

            reader = ReplayTrace(directory)
            assert reader.lookup(BENCH, config, prior, unit=UNIT) is None
            assert reader.lookup_shared(BENCH, config, prior) == []

            _append_raw(directory, line[cut:])
            found = reader.lookup(BENCH, config, prior, unit=UNIT)
            assert found is not None and found["runtimes"] == [1.25]

    def test_dangling_tear_never_hides_earlier_records(self, tmp_path):
        trace = ReplayTrace(tmp_path)
        _record(trace, (0,), 0, 0.5)
        _append_raw(str(tmp_path), TORN)
        fresh = ReplayTrace(tmp_path)
        found = fresh.lookup(BENCH, (0,), 0, unit=UNIT)
        assert found is not None and found["runtimes"] == [0.5]
        assert fresh.lookup(BENCH, (2,), 1, unit=UNIT) is None
