"""Tests for the active-learning loop (Algorithm 1) and the plan comparison."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.acquisition import ALMAcquisition, RandomAcquisition
from repro.core.comparison import ComparisonConfig, compare_sampling_plans, speedup_between
from repro.core.evaluation import TestSet, build_test_set, evaluate_rmse
from repro.core.learner import ActiveLearner, LearnerConfig, LearningResult
from repro.core.plans import fixed_plan, sequential_plan, standard_plans
from repro.models.baselines import KNNRegressor
from repro.spapt.suite import get_benchmark

SMALL = LearnerConfig(
    n_initial=4,
    seed_observations=4,
    n_candidates=15,
    max_training_examples=24,
    reference_size=10,
    evaluation_interval=5,
    tree_particles=8,
)


@pytest.fixture(scope="module")
def mm():
    return get_benchmark("mm")


@pytest.fixture(scope="module")
def small_test_set(mm):
    return build_test_set(mm, size=40, observations=3, rng=np.random.default_rng(9))


class TestLearnerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            LearnerConfig(n_initial=0)
        with pytest.raises(ValueError):
            LearnerConfig(max_training_examples=5, n_initial=5)
        with pytest.raises(ValueError):
            LearnerConfig(evaluation_interval=0)
        with pytest.raises(ValueError):
            LearnerConfig(max_cost_seconds=0.0)

    def test_paper_scale_matches_section_4_4(self):
        config = LearnerConfig.paper_scale()
        assert config.n_initial == 5
        assert config.seed_observations == 35
        assert config.n_candidates == 500
        assert config.max_training_examples == 2500
        assert config.tree_particles == 5000

    def test_paper_scale_forwards_overrides(self):
        config = LearnerConfig.paper_scale(
            tree_backend="numba", max_cost_seconds=3600.0, tree_particles=100
        )
        # Overrides land on the constructor; the untouched fields keep
        # the paper's Section 4.4 values.
        assert config.tree_backend == "numba"
        assert config.max_cost_seconds == 3600.0
        assert config.tree_particles == 100
        assert config.n_initial == 5
        assert config.seed_observations == 35
        assert config.max_training_examples == 2500

    def test_paper_scale_overrides_are_validated(self):
        with pytest.raises(ValueError):
            LearnerConfig.paper_scale(n_initial=0)
        with pytest.raises(TypeError):
            LearnerConfig.paper_scale(not_a_field=1)


class TestEvaluation:
    def test_build_test_set_shapes(self, mm):
        test_set = build_test_set(mm, size=20, observations=2, rng=np.random.default_rng(1))
        assert len(test_set) == 20
        assert test_set.features.shape == (20, mm.search_space.dimensions)
        assert np.all(test_set.mean_runtimes > 0)

    def test_build_test_set_excludes(self, mm):
        exclude = [mm.search_space.default_configuration()]
        test_set = build_test_set(
            mm, size=10, observations=1, rng=np.random.default_rng(2), exclude=exclude
        )
        assert tuple(exclude[0]) not in test_set.configurations

    def test_test_set_validation(self, mm):
        with pytest.raises(ValueError):
            build_test_set(mm, size=0)
        with pytest.raises(ValueError):
            TestSet(configurations=(), features=np.zeros((0, 2)), mean_runtimes=np.zeros(0))

    def test_evaluate_rmse_perfect_model(self, mm, small_test_set):
        class Oracle:
            def predict(self, features):
                from repro.models.base import Prediction

                return Prediction(
                    mean=small_test_set.mean_runtimes.copy(),
                    variance=np.ones(len(small_test_set)),
                )

        assert evaluate_rmse(Oracle(), small_test_set) == 0.0


class TestActiveLearner:
    def test_sequential_plan_run(self, mm, small_test_set):
        learner = ActiveLearner(
            mm, plan=sequential_plan(5), config=SMALL, rng=np.random.default_rng(0)
        )
        result = learner.run(small_test_set)
        assert isinstance(result, LearningResult)
        assert result.plan_name == "variable observations"
        assert result.training_examples == SMALL.max_training_examples
        assert len(result.curve) >= 2
        assert result.total_cost_seconds > 0
        # Sequential plan: selections after seeding take one observation each.
        expected_obs = SMALL.n_initial * SMALL.seed_observations + (
            SMALL.max_training_examples - SMALL.n_initial
        )
        assert result.total_observations == expected_obs

    def test_fixed_plan_takes_nobs_per_example(self, mm, small_test_set):
        learner = ActiveLearner(
            mm, plan=fixed_plan(3), config=SMALL, rng=np.random.default_rng(1)
        )
        result = learner.run(small_test_set)
        selections = SMALL.max_training_examples - SMALL.n_initial
        assert result.total_observations == SMALL.n_initial * SMALL.seed_observations + 3 * selections
        # Fixed plans never revisit, so every selection is a distinct configuration.
        assert result.distinct_configurations == SMALL.max_training_examples

    def test_sequential_plan_can_revisit(self, mm, small_test_set):
        config = LearnerConfig(
            n_initial=4,
            seed_observations=2,
            n_candidates=3,  # few fresh candidates => revisits are likely
            max_training_examples=40,
            reference_size=5,
            evaluation_interval=10,
            tree_particles=8,
        )
        learner = ActiveLearner(
            mm, plan=sequential_plan(10), config=config, rng=np.random.default_rng(3)
        )
        result = learner.run(small_test_set)
        assert result.distinct_configurations <= result.training_examples

    def test_observation_counts_respect_cap(self, mm, small_test_set):
        cap = 4
        learner = ActiveLearner(
            mm, plan=sequential_plan(cap), config=SMALL, rng=np.random.default_rng(4)
        )
        result = learner.run(small_test_set)
        for configuration, count in result.observation_counts.items():
            assert count <= max(cap, SMALL.seed_observations)

    def test_cost_budget_stops_early(self, mm, small_test_set):
        config = LearnerConfig(
            n_initial=4,
            seed_observations=4,
            n_candidates=10,
            max_training_examples=500,
            reference_size=8,
            evaluation_interval=5,
            tree_particles=8,
            max_cost_seconds=100.0,
        )
        learner = ActiveLearner(
            mm, plan=fixed_plan(1), config=config, rng=np.random.default_rng(5)
        )
        result = learner.run(small_test_set)
        assert result.training_examples < 500
        # One extra selection may land after the budget check; allow slack.
        assert result.total_cost_seconds < 200.0

    def test_curve_costs_are_monotone(self, mm, small_test_set):
        learner = ActiveLearner(
            mm, plan=sequential_plan(5), config=SMALL, rng=np.random.default_rng(6)
        )
        result = learner.run(small_test_set)
        costs = result.curve.costs()
        assert np.all(np.diff(costs) >= 0)

    def test_custom_model_factory_and_acquisition(self, mm, small_test_set):
        learner = ActiveLearner(
            mm,
            plan=fixed_plan(1),
            acquisition=ALMAcquisition(),
            config=SMALL,
            model_factory=lambda rng: KNNRegressor(k=3),
            rng=np.random.default_rng(7),
        )
        result = learner.run(small_test_set)
        assert isinstance(result.model, KNNRegressor)
        assert len(result.curve) >= 2

    def test_random_acquisition_runs(self, mm, small_test_set):
        learner = ActiveLearner(
            mm,
            plan=sequential_plan(5),
            acquisition=RandomAcquisition(),
            config=SMALL,
            rng=np.random.default_rng(8),
        )
        result = learner.run(small_test_set)
        assert result.training_examples == SMALL.max_training_examples

    def test_learning_reduces_error(self, mm, small_test_set):
        """The final model must beat the seed-only model on the test set."""
        config = LearnerConfig(
            n_initial=5,
            seed_observations=4,
            n_candidates=25,
            max_training_examples=60,
            reference_size=15,
            evaluation_interval=10,
            tree_particles=15,
        )
        learner = ActiveLearner(
            mm, plan=sequential_plan(10), config=config, rng=np.random.default_rng(11)
        )
        result = learner.run(small_test_set)
        first_rmse = result.curve.points[0].rmse
        assert result.curve.best_error < first_rmse


class TestComparison:
    def test_compare_sampling_plans_structure(self, mm):
        config = ComparisonConfig(
            learner=SMALL, repetitions=1, test_size=30, test_observations=2, seed=5
        )
        comparison = compare_sampling_plans(mm, config=config)
        assert set(comparison.curves) == {
            "all observations",
            "one observation",
            "variable observations",
        }
        assert comparison.lowest_common_rmse > 0
        for cost in comparison.cost_to_reach.values():
            assert cost > 0
        speedup = speedup_between(comparison)
        assert speedup > 0
        assert comparison.speedup("all observations", "variable observations") == speedup

    def test_comparison_validation(self):
        with pytest.raises(ValueError):
            ComparisonConfig(repetitions=0)
        with pytest.raises(ValueError):
            ComparisonConfig(test_size=0)

    def test_unknown_plan_name_raises(self, mm):
        config = ComparisonConfig(
            learner=SMALL, repetitions=1, test_size=20, test_observations=2
        )
        comparison = compare_sampling_plans(mm, plans=[fixed_plan(1)], config=config)
        with pytest.raises(KeyError):
            comparison.speedup("all observations", "one observation")

    def test_paper_scale_config(self):
        config = ComparisonConfig.paper_scale()
        assert config.repetitions == 10
        assert config.test_size == 2500
