"""Importable test helpers shared across test modules.

Kept out of ``conftest.py`` on purpose: test modules must not ``import
conftest`` because the repository has several conftest files (``tests/`` and
``benchmarks/``) and whichever is imported first wins the ``conftest``
module name, making the import order-dependent and breaking whole-repo
collection.
"""

from __future__ import annotations

from repro.measurement.noise import NoiseModel


class StubProgram:
    """A minimal TunableProgram used by profiler/learner unit tests.

    The "configuration" is a pair ``(a, b)`` with runtime ``1 + 0.1*a + 0.01*b``
    seconds, compile time 0.5 s and no noise unless a model is supplied.
    """

    name = "stub"

    def __init__(self, noise_model: NoiseModel | None = None) -> None:
        self._noise = noise_model if noise_model is not None else NoiseModel.noiseless()

    def true_runtime(self, configuration):
        a, b = configuration
        return 1.0 + 0.1 * a + 0.01 * b

    def compile_time(self, configuration):
        return 0.5

    def noise_sensitivity(self, configuration):
        return 0.0

    @property
    def noise_model(self):
        return self._noise
