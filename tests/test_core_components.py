"""Tests for the core building blocks: plans, acquisition, candidates, curves."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.acquisition import (
    ALCAcquisition,
    ALMAcquisition,
    RandomAcquisition,
    acquisition_names,
    make_acquisition,
)
from repro.core.candidates import CandidatePool
from repro.core.curves import (
    CurvePoint,
    LearningCurve,
    average_curves,
    lowest_common_error,
    speedup_factor,
    time_to_reach,
)
from repro.core.plans import (
    SamplingPlan,
    fixed_plan,
    make_plan,
    plan_names,
    sequential_plan,
    standard_plans,
)
from repro.models.dynamic_tree import DynamicTreeConfig, DynamicTreeRegressor
from repro.spapt.search_space import SearchSpace, TunableParameter


class TestSamplingPlans:
    def test_fixed_plan_names(self):
        assert fixed_plan(35).name == "all observations"
        assert fixed_plan(1).name == "one observation"
        assert fixed_plan(10, name="ten").name == "ten"

    def test_fixed_plan_does_not_revisit(self):
        plan = fixed_plan(35)
        assert not plan.revisit
        assert not plan.is_sequential
        assert plan.observations_per_selection == 35
        assert plan.max_observations_per_example == 35

    def test_sequential_plan_is_sequential(self):
        plan = sequential_plan(35)
        assert plan.revisit
        assert plan.is_sequential
        assert plan.observations_per_selection == 1
        assert not plan.aggregate_mean

    def test_standard_plans_match_paper(self):
        plans = standard_plans()
        assert [p.name for p in plans] == [
            "all observations",
            "one observation",
            "variable observations",
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingPlan("bad", 0, 1, False)
        with pytest.raises(ValueError):
            SamplingPlan("bad", 5, 3, False)


class _FakeModel:
    """Deterministic model stub for acquisition tests."""

    def __init__(self, variances):
        self._variances = np.asarray(variances, dtype=float)

    def predict(self, X):
        from repro.models.base import Prediction

        X = np.atleast_2d(X)
        return Prediction(mean=np.zeros(X.shape[0]), variance=self._variances[: X.shape[0]])

    def expected_average_variance(self, candidates, reference):
        # Pretend the candidate with the highest own variance removes the most.
        return 1.0 - self._variances[: np.atleast_2d(candidates).shape[0]] * 0.1


class TestAcquisition:
    def test_alm_selects_highest_variance(self, rng):
        model = _FakeModel([0.1, 0.9, 0.3])
        index = ALMAcquisition().select(model, np.zeros((3, 2)), np.zeros((2, 2)), rng)
        assert index == 1

    def test_alc_selects_lowest_expected_average_variance(self, rng):
        model = _FakeModel([0.1, 0.9, 0.3])
        index = ALCAcquisition().select(model, np.zeros((3, 2)), np.zeros((2, 2)), rng)
        assert index == 1  # highest variance -> lowest remaining average variance

    def test_random_is_uniformish(self, rng):
        model = _FakeModel([0.5] * 4)
        picks = {
            RandomAcquisition().select(model, np.zeros((4, 2)), np.zeros((1, 2)), rng)
            for _ in range(60)
        }
        assert len(picks) > 1

    def test_make_acquisition(self):
        assert isinstance(make_acquisition("alc"), ALCAcquisition)
        assert isinstance(make_acquisition("ALM"), ALMAcquisition)
        assert isinstance(make_acquisition(" random "), RandomAcquisition)
        with pytest.raises(KeyError):
            make_acquisition("bogus")

    def test_tie_break_large_magnitude_scores(self):
        """Float-noise duplicates of a large-magnitude best score are tied.

        With the old absolute ``best - 1e-15`` band, a 1-ulp difference at
        magnitude 1e6 (~1.2e-10, far above the band) excluded the duplicate
        and the 'random' tie break always returned the rounding-accident
        winner.
        """

        class _Scored(ALMAcquisition):
            def score(self, model, candidates, reference, rng):
                best = -1e6
                return np.array(
                    [best - 2.0, np.nextafter(best, -np.inf), best, best - 1.0]
                )

        picks = {
            _Scored().select(None, np.zeros((4, 2)), np.zeros((1, 2)), np.random.default_rng(seed))
            for seed in range(40)
        }
        assert picks == {1, 2}

    def test_tie_break_small_magnitude_scores(self):
        """Genuinely different tiny scores are NOT lumped together.

        The old absolute 1e-15 band dwarfed scores of magnitude ~1e-18
        (negated ALC variances near the noise floor), treating candidates
        that differ by three orders of magnitude as ties.
        """

        class _Scored(ALMAcquisition):
            def score(self, model, candidates, reference, rng):
                return np.array([-5e-18, -1e-18, -4e-16, -2e-18])

        picks = {
            _Scored().select(None, np.zeros((4, 2)), np.zeros((1, 2)), np.random.default_rng(seed))
            for seed in range(40)
        }
        assert picks == {1}

    def test_tie_break_exact_ties_uniform(self):
        """Exact ties (identical-leaf candidates) are drawn from uniformly."""

        class _Scored(ALMAcquisition):
            def score(self, model, candidates, reference, rng):
                return np.array([0.5, 0.7, 0.7, 0.1])

        picks = {
            _Scored().select(None, np.zeros((4, 2)), np.zeros((1, 2)), np.random.default_rng(seed))
            for seed in range(40)
        }
        assert picks == {1, 2}

    def test_tie_break_zero_best_degrades_to_exact(self):
        class _Scored(ALMAcquisition):
            def score(self, model, candidates, reference, rng):
                return np.array([-1e-300, 0.0, -5e-301])

        picks = {
            _Scored().select(None, np.zeros((3, 2)), np.zeros((1, 2)), np.random.default_rng(seed))
            for seed in range(20)
        }
        assert picks == {1}

    def test_alc_with_real_dynamic_tree_prefers_sparse_noisy_region(self, rng):
        """A candidate in a barely-sampled region must score at least as well
        (lower expected remaining variance is better) than one in a densely
        sampled, low-noise region."""
        model = DynamicTreeRegressor(
            DynamicTreeConfig(n_particles=20), rng=np.random.default_rng(0)
        )
        dense = rng.normal(loc=(-1.0, -1.0), scale=0.05, size=(40, 2))
        sparse = np.array([[1.0, 1.0]])
        X = np.vstack([dense, sparse])
        y = np.concatenate([np.full(40, 1.0) + rng.normal(0, 0.01, 40), [5.0]])
        model.fit(X, y)
        candidates = np.array([[-1.0, -1.0], [1.0, 1.0]])
        reference = np.vstack([dense[:10], sparse])
        scores = ALCAcquisition().score(model, candidates, reference, rng)
        assert scores[1] >= scores[0]


class TestCandidatePool:
    @pytest.fixture
    def space(self):
        return SearchSpace(
            [
                TunableParameter.unroll("U_i", "i", max_factor=4),
                TunableParameter.unroll("U_j", "j", max_factor=4),
            ]
        )

    def test_draw_excludes_seen(self, space, rng):
        pool = CandidatePool(space, max_observations=3, revisit=False)
        seen = (1, 1)
        pool.record(seen)
        for _ in range(5):
            candidates = pool.draw(5, rng)
            assert seen not in candidates

    def test_revisit_pool_includes_unsaturated_examples(self, space, rng):
        pool = CandidatePool(space, max_observations=3, revisit=True)
        pool.record((1, 1), observations=1)
        pool.record((2, 2), observations=3)
        candidates = pool.draw(0, rng)
        assert (1, 1) in candidates
        assert (2, 2) not in candidates

    def test_non_revisit_pool_never_returns_seen(self, space, rng):
        pool = CandidatePool(space, max_observations=3, revisit=False)
        pool.record((1, 1), observations=1)
        assert pool.revisitable() == []

    def test_counts_accumulate(self, space):
        pool = CandidatePool(space, max_observations=5, revisit=True)
        pool.record((1, 2))
        pool.record((1, 2), observations=2)
        assert pool.count((1, 2)) == 3
        assert pool.count((3, 3)) == 0
        assert pool.observation_counts == {(1, 2): 3}

    def test_exhaustion(self, space, rng):
        pool = CandidatePool(space, max_observations=1, revisit=True)
        for configuration in space.sample_distinct(space.size, rng):
            pool.record(configuration)
        assert pool.exhausted()
        assert pool.draw(10, rng) == []

    def test_validation(self, space):
        with pytest.raises(ValueError):
            CandidatePool(space, max_observations=0, revisit=True)
        pool = CandidatePool(space, max_observations=2, revisit=True)
        with pytest.raises(ValueError):
            pool.record((1, 1), observations=0)
        with pytest.raises(ValueError):
            pool.draw(-1, np.random.default_rng(0))


class TestLearningCurves:
    def make_curve(self, label, pairs):
        return LearningCurve(
            label,
            [
                CurvePoint(cost_seconds=c, rmse=r, training_examples=i, observations=i)
                for i, (c, r) in enumerate(pairs)
            ],
        )

    def test_best_error_and_time_to_error(self):
        curve = self.make_curve("a", [(1, 0.5), (2, 0.3), (3, 0.4), (4, 0.2)])
        assert curve.best_error == 0.2
        assert curve.time_to_error(0.3) == 2
        assert curve.time_to_error(0.1) is None

    def test_error_at_cost_is_running_minimum(self):
        curve = self.make_curve("a", [(1, 0.5), (2, 0.3), (3, 0.4)])
        assert curve.error_at_cost(2.5) == 0.3
        assert curve.error_at_cost(3.5) == 0.3
        assert curve.error_at_cost(0.5) == float("inf")

    def test_points_must_be_cost_ordered(self):
        with pytest.raises(ValueError):
            self.make_curve("a", [(2, 0.5), (1, 0.3)])
        curve = self.make_curve("a", [(1, 0.5)])
        with pytest.raises(ValueError):
            curve.add(CurvePoint(cost_seconds=0.5, rmse=0.1, training_examples=1, observations=1))

    def test_lowest_common_error(self):
        fast = self.make_curve("fast", [(1, 0.5), (2, 0.1)])
        slow = self.make_curve("slow", [(1, 0.6), (5, 0.3)])
        assert lowest_common_error([fast, slow]) == 0.3

    def test_time_to_reach(self):
        fast = self.make_curve("fast", [(1, 0.5), (2, 0.1)])
        assert time_to_reach(fast, 0.3) == 2
        with pytest.raises(ValueError):
            time_to_reach(fast, 0.01)

    def test_average_curves(self):
        a = self.make_curve("plan", [(1, 0.5), (10, 0.3)])
        b = self.make_curve("plan", [(1, 0.7), (10, 0.1)])
        averaged = average_curves([a, b], grid_size=10)
        assert averaged.label == "plan"
        assert len(averaged) > 0
        assert averaged.best_error == pytest.approx(0.2, abs=0.01)

    def test_average_single_curve_passthrough(self):
        a = self.make_curve("plan", [(1, 0.5)])
        assert average_curves([a]) is a

    def test_average_requires_curves(self):
        with pytest.raises(ValueError):
            average_curves([])

    def test_curve_point_validation(self):
        with pytest.raises(ValueError):
            CurvePoint(cost_seconds=-1, rmse=0.1, training_examples=0, observations=0)
        with pytest.raises(ValueError):
            CurvePoint(cost_seconds=1, rmse=-0.1, training_examples=0, observations=0)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1000, allow_nan=False),
            st.floats(min_value=0.001, max_value=10, allow_nan=False),
        ),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=50, deadline=None)
def test_curve_best_error_reachable_property(pairs):
    pairs = sorted(pairs, key=lambda p: p[0])
    curve = LearningCurve(
        "p",
        [
            CurvePoint(cost_seconds=c, rmse=r, training_examples=i, observations=i)
            for i, (c, r) in enumerate(pairs)
        ],
    )
    # The time needed to reach the curve's own best error is always defined
    # and never exceeds the final cost.
    cost = time_to_reach(curve, curve.best_error)
    assert cost <= curve.final_cost + 1e-9


class TestNameBasedFactories:
    """The name-based strategy factories: an experiment axis can be a list
    of plain strings resolved at the core layer."""

    def test_make_plan_resolves_registered_names(self):
        assert make_plan("all-observations").observations_per_selection == 35
        assert make_plan("one-observation").observations_per_selection == 1
        assert make_plan("variable-observations").is_sequential
        assert make_plan("adaptive-ci").ci_threshold is not None

    def test_make_plan_accepts_report_labels(self):
        # The space-separated labels the paper's figures use resolve too.
        assert make_plan("variable observations") == sequential_plan()
        assert make_plan("ALL OBSERVATIONS") == fixed_plan(35)

    def test_make_plan_rejects_unknown(self):
        with pytest.raises(KeyError, match="unknown sampling plan"):
            make_plan("bogus")

    def test_plan_names_cover_standard_plans(self):
        resolved = {make_plan(name).name for name in plan_names()}
        assert {plan.name for plan in standard_plans()} <= resolved

    def test_acquisition_names_round_trip(self):
        assert acquisition_names() == [
            "alc",
            "alm",
            "random",
            "greedy-alc-fantasy",
            "diversity-penalty",
        ]
        for name in acquisition_names():
            assert make_acquisition(name).name == name

    def test_make_model_resolves_every_name(self):
        from repro.models import make_model, model_factory, model_names

        rng = np.random.default_rng(0)
        for name in model_names():
            model = make_model(name, rng=rng, tree_particles=4)
            model.fit(np.array([[0.1], [0.9], [0.5]]), np.array([1.0, 2.0, 1.5]))
            prediction = model.predict(np.array([[0.4]]))
            assert prediction.mean.shape == (1,)
            factory = model_factory(name, tree_particles=4)
            assert type(factory(np.random.default_rng(1))) is type(model)

    def test_make_model_rejects_unknown(self):
        from repro.models import make_model

        with pytest.raises(KeyError, match="unknown model"):
            make_model("transformer")

    def test_comparison_resolves_plan_and_acquisition_names(self):
        from repro.core.comparison import resolve_acquisition, resolve_plans

        plans = resolve_plans(["all-observations", sequential_plan()])
        assert plans[0] == fixed_plan(35)
        assert plans[1].is_sequential
        assert resolve_acquisition("alm").name == "alm"
        assert resolve_acquisition(None).name == "alc"


class TestSpeedupFactor:
    @staticmethod
    def _curve(label, points):
        return LearningCurve(
            label,
            [
                CurvePoint(
                    cost_seconds=c, rmse=r, training_examples=i, observations=i
                )
                for i, (c, r) in enumerate(points)
            ],
        )

    def test_uniformly_cheaper_contender_scores_its_cost_ratio(self):
        # The contender reaches every error level at exactly half the cost,
        # so the multi-level factor equals the single-level speed-up.
        baseline = self._curve("base", [(2.0, 1.0), (4.0, 0.5), (8.0, 0.25)])
        contender = self._curve("fast", [(1.0, 1.0), (2.0, 0.5), (4.0, 0.25)])
        assert speedup_factor(baseline, contender) == pytest.approx(2.0)

    def test_identical_curves_score_one(self):
        curve = self._curve("a", [(1.0, 1.0), (2.0, 0.4)])
        same = self._curve("b", [(1.0, 1.0), (2.0, 0.4)])
        assert speedup_factor(curve, same) == pytest.approx(1.0)

    def test_crossing_curves_average_across_levels(self):
        # Contender is cheaper at high error, pricier at low error: the
        # geometric mean lands strictly between the two pointwise ratios.
        baseline = self._curve("base", [(2.0, 1.0), (3.0, 0.2)])
        contender = self._curve("cross", [(1.0, 1.0), (6.0, 0.2)])
        factor = speedup_factor(baseline, contender, levels=5)
        assert 0.5 < factor < 2.0

    def test_degenerate_range_falls_back_to_single_level(self):
        # One curve starts below the other's floor: only the common floor
        # is comparable.
        baseline = self._curve("base", [(4.0, 0.5)])
        contender = self._curve("deep", [(2.0, 0.3)])
        assert speedup_factor(baseline, contender) == pytest.approx(2.0)

    def test_rejects_nonpositive_levels(self):
        curve = self._curve("a", [(1.0, 1.0)])
        with pytest.raises(ValueError):
            speedup_factor(curve, curve, levels=0)
