"""Tests for the machine model: cache hierarchy, core model, cost model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.transforms import CacheTile, LoopUnroll, UnrollAndJam
from repro.machine.cache import CacheLevel, MemoryHierarchy, haswell_hierarchy
from repro.machine.cpu import CoreModel, haswell_core
from repro.machine.cost_model import MachineCostModel, TransformConfiguration
from repro.spapt.kernels import build_mm


class TestCacheLevel:
    def test_hit_probability_monotone_in_footprint(self):
        level = CacheLevel("L1", 32 * 1024, 64, 4.0)
        small = level.hit_probability(1024)
        boundary = level.hit_probability(level.effective_capacity)
        large = level.hit_probability(10 * 1024 * 1024)
        assert small > boundary > large
        assert boundary == pytest.approx(0.5)

    def test_zero_footprint_always_hits(self):
        level = CacheLevel("L1", 32 * 1024, 64, 4.0)
        assert level.hit_probability(0.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheLevel("L1", 0, 64, 4.0)
        with pytest.raises(ValueError):
            CacheLevel("L1", 1024, 64, 4.0, utilization=0.0)


class TestMemoryHierarchy:
    def test_levels_must_be_ordered(self):
        with pytest.raises(ValueError):
            MemoryHierarchy(
                levels=(
                    CacheLevel("L2", 256 * 1024, 64, 12.0),
                    CacheLevel("L1", 32 * 1024, 64, 4.0),
                )
            )

    def test_needs_at_least_one_level(self):
        with pytest.raises(ValueError):
            MemoryHierarchy(levels=())

    def test_small_footprint_costs_l1_latency(self):
        hierarchy = haswell_hierarchy()
        cycles = hierarchy.expected_access_cycles(1024, stride_bytes=8)
        assert cycles == pytest.approx(hierarchy.l1.latency_cycles, rel=0.2)

    def test_streaming_dram_costs_more_than_l1(self):
        hierarchy = haswell_hierarchy()
        cached = hierarchy.expected_access_cycles(1024, stride_bytes=8)
        streaming = hierarchy.expected_access_cycles(1e9, stride_bytes=512)
        assert streaming > cached * 10

    def test_unit_stride_amortises_line_fills(self):
        hierarchy = haswell_hierarchy()
        unit = hierarchy.expected_access_cycles(1e9, stride_bytes=8)
        strided = hierarchy.expected_access_cycles(1e9, stride_bytes=512)
        assert unit < strided

    def test_zero_stride_is_cheapest(self):
        hierarchy = haswell_hierarchy()
        repeated = hierarchy.expected_access_cycles(1e9, stride_bytes=0)
        assert repeated == pytest.approx(hierarchy.l1.latency_cycles)

    def test_cost_monotone_in_footprint(self):
        hierarchy = haswell_hierarchy()
        footprints = [1e3, 1e4, 1e5, 1e6, 1e7, 1e8]
        costs = [hierarchy.expected_access_cycles(f, 8) for f in footprints]
        assert all(b >= a - 1e-9 for a, b in zip(costs, costs[1:]))

    def test_boundary_proximity_peaks_at_capacity(self):
        hierarchy = haswell_hierarchy()
        l1 = hierarchy.levels[0].effective_capacity
        at_boundary = hierarchy.boundary_proximity(l1)
        far_below = hierarchy.boundary_proximity(l1 / 100)
        assert at_boundary == pytest.approx(1.0)
        assert far_below < 0.1
        assert hierarchy.boundary_proximity(0.0) == 0.0


class TestCoreModel:
    def test_loop_overhead_amortised_by_unrolling(self):
        core = haswell_core()
        assert core.loop_overhead_cycles(8) == pytest.approx(
            core.loop_overhead_cycles(1) / 8
        )
        with pytest.raises(ValueError):
            core.loop_overhead_cycles(0)

    def test_register_pressure_multiplier_shape(self):
        core = haswell_core()
        low = core.register_pressure_multiplier(8)
        onset = core.register_pressure_multiplier(
            core.vector_registers * core.spill_onset_ratio
        )
        high = core.register_pressure_multiplier(1000)
        assert low == 1.0
        assert onset == pytest.approx(1.0)
        assert 1.0 < high <= 1.0 + core.spill_max_slowdown + 1e-9

    def test_register_pressure_rejects_negative(self):
        with pytest.raises(ValueError):
            haswell_core().register_pressure_multiplier(-1)

    def test_icache_multiplier(self):
        core = haswell_core()
        assert core.icache_multiplier(10) == 1.0
        big = core.icache_multiplier(1_000_000)
        assert 1.0 < big <= 1.0 + core.icache_max_slowdown + 1e-9

    def test_compute_and_issue_cycles(self):
        core = haswell_core()
        assert core.compute_cycles(8) == pytest.approx(8 / core.flops_per_cycle)
        assert core.issue_cycles(4, 1) == pytest.approx(
            max(4 / core.load_ports, 1 / core.store_ports)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            CoreModel(frequency_ghz=0.0)
        with pytest.raises(ValueError):
            CoreModel(vector_registers=0)


class TestTransformConfiguration:
    def test_defaults_are_identity(self):
        config = TransformConfiguration()
        assert config.unroll_factor("i") == 1
        assert config.cache_tile("i") is None
        assert config.register_tile("i") == 1

    def test_tile_of_one_means_untiled(self):
        config = TransformConfiguration(cache_tiles={"i": 1})
        assert config.cache_tile("i") is None

    def test_rejects_non_positive_factors(self):
        with pytest.raises(ValueError):
            TransformConfiguration(unroll={"i": 0})
        with pytest.raises(ValueError):
            TransformConfiguration(register_tiles={"i": -2})


class TestMachineCostModel:
    @pytest.fixture(scope="class")
    def model(self):
        return MachineCostModel(build_mm(n=256))

    def test_runtime_positive_and_finite(self, model):
        runtime = model.runtime_seconds(TransformConfiguration())
        assert 0 < runtime < 1e3

    def test_breakdown_sums_to_total(self, model):
        breakdown = model.breakdown(TransformConfiguration())
        expected = (
            max(breakdown.compute_seconds, breakdown.memory_seconds)
            + breakdown.overhead_seconds
            + breakdown.spill_seconds
            + breakdown.icache_seconds
        )
        assert breakdown.total_seconds == pytest.approx(expected)

    def test_inner_unrolling_reduces_overhead(self, model):
        base = model.breakdown(TransformConfiguration())
        unrolled = model.breakdown(TransformConfiguration(unroll={"k": 8}))
        assert unrolled.overhead_seconds < base.overhead_seconds

    def test_cache_tiling_reduces_memory_time(self, model):
        base = model.breakdown(TransformConfiguration())
        tiled = model.breakdown(TransformConfiguration(cache_tiles={"j": 64, "k": 64}))
        assert tiled.memory_seconds < base.memory_seconds

    def test_extreme_unrolling_slower_than_moderate(self, model):
        moderate = model.runtime_seconds(TransformConfiguration(unroll={"k": 4}))
        extreme = model.runtime_seconds(
            TransformConfiguration(unroll={"i": 30, "j": 30, "k": 32})
        )
        assert extreme > moderate

    def test_register_tiling_reduces_loads(self, model):
        base = model.breakdown(TransformConfiguration())
        tiled = model.breakdown(TransformConfiguration(register_tiles={"i": 4}))
        assert tiled.memory_seconds < base.memory_seconds

    def test_compile_time_grows_with_unrolling(self, model):
        small = model.compile_seconds(TransformConfiguration())
        big = model.compile_seconds(
            TransformConfiguration(unroll={"i": 16, "j": 16, "k": 16})
        )
        assert big > small

    def test_compile_time_is_capped(self, model):
        huge = model.compile_seconds(
            TransformConfiguration(unroll={"i": 30, "j": 30, "k": 32}, register_tiles={"i": 8})
        )
        assert huge < 120.0

    def test_noise_sensitivity_in_unit_interval(self, model):
        for tiles in [{}, {"j": 64}, {"j": 64, "k": 64}, {"j": 512}]:
            value = model.noise_sensitivity(TransformConfiguration(cache_tiles=tiles))
            assert 0.0 <= value <= 1.0

    def test_time_scale_scales_runtime(self):
        kernel = build_mm(n=64)
        base = MachineCostModel(kernel, time_scale=1.0)
        scaled = MachineCostModel(kernel, time_scale=2.0)
        config = TransformConfiguration()
        assert scaled.runtime_seconds(config) == pytest.approx(
            2.0 * base.runtime_seconds(config)
        )

    def test_rejects_bad_time_scale(self):
        with pytest.raises(ValueError):
            MachineCostModel(build_mm(n=32), time_scale=0.0)

    def test_closed_form_matches_transformed_ir_statement_count(self):
        """The cost model's unroll product equals what the real passes generate."""
        kernel = build_mm(n=64)
        model = MachineCostModel(kernel)
        config = TransformConfiguration(unroll={"k": 4}, register_tiles={"i": 2})
        transformed = LoopUnroll("k", 4).run(UnrollAndJam("i", 2).run(kernel))
        from repro.ir.analysis import innermost_bodies

        generated = innermost_bodies(transformed)[0].statements
        assert generated == model._unroll_product(model._bodies[0], config)


# --------------------------------------------------------------------------
# Property-based tests
# --------------------------------------------------------------------------

unroll_factors = st.integers(min_value=1, max_value=32)
tile_sizes = st.sampled_from([1, 16, 32, 64, 128, 256, 512])


@given(ui=unroll_factors, uk=unroll_factors, tj=tile_sizes, tk=tile_sizes)
@settings(max_examples=40, deadline=None)
def test_runtime_always_positive_and_finite_property(ui, uk, tj, tk):
    model = MachineCostModel(build_mm(n=128))
    config = TransformConfiguration(
        unroll={"i": ui, "k": uk}, cache_tiles={"j": tj, "k": tk}
    )
    runtime = model.runtime_seconds(config)
    compile_time = model.compile_seconds(config)
    sensitivity = model.noise_sensitivity(config)
    assert runtime > 0 and runtime < 1e4
    assert compile_time > 0 and compile_time < 1e3
    assert 0.0 <= sensitivity <= 1.0
