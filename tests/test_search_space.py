"""Tests for the SPAPT search-space machinery."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.cost_model import TransformConfiguration
from repro.spapt.search_space import ParameterKind, SearchSpace, TunableParameter


@pytest.fixture
def small_space():
    return SearchSpace(
        [
            TunableParameter.unroll("U_i", "i", max_factor=4),
            TunableParameter.cache_tile("T_j", "j", values=(1, 16, 32)),
            TunableParameter.register_tile("RT_i", "i", max_factor=2),
        ]
    )


class TestTunableParameter:
    def test_unroll_constructor(self):
        param = TunableParameter.unroll("U_i", "i", max_factor=8)
        assert param.kind is ParameterKind.UNROLL
        assert param.values == tuple(range(1, 9))
        assert param.cardinality == 8

    def test_cache_tile_default_values(self):
        param = TunableParameter.cache_tile("T_j", "j")
        assert param.values[0] == 1
        assert param.values[-1] == 1024

    def test_value_index_roundtrip(self):
        param = TunableParameter.cache_tile("T_j", "j", values=(1, 16, 32))
        assert param.value_at(param.index_of(16)) == 16
        with pytest.raises(ValueError):
            param.index_of(17)

    def test_validation(self):
        with pytest.raises(ValueError):
            TunableParameter("p", ParameterKind.UNROLL, "i", ())
        with pytest.raises(ValueError):
            TunableParameter("p", ParameterKind.UNROLL, "i", (0, 1))
        with pytest.raises(ValueError):
            TunableParameter("p", ParameterKind.UNROLL, "i", (2, 2))


class TestSearchSpace:
    def test_size_is_product_of_cardinalities(self, small_space):
        assert small_space.size == 4 * 3 * 2

    def test_duplicate_parameter_names_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace(
                [
                    TunableParameter.unroll("U_i", "i"),
                    TunableParameter.unroll("U_i", "j"),
                ]
            )

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace([])

    def test_default_configuration_is_identity(self, small_space):
        assert small_space.default_configuration() == (1, 1, 1)

    def test_validate_rejects_wrong_length_and_values(self, small_space):
        with pytest.raises(ValueError):
            small_space.validate((1, 1))
        with pytest.raises(ValueError):
            small_space.validate((5, 1, 1))
        assert (2, 16, 1) in small_space
        assert (2, 17, 1) not in small_space

    def test_random_configuration_is_member(self, small_space, rng):
        for _ in range(20):
            assert small_space.random_configuration(rng) in small_space

    def test_sample_distinct_returns_unique(self, small_space, rng):
        sample = small_space.sample_distinct(10, rng)
        assert len(sample) == 10
        assert len(set(sample)) == 10

    def test_sample_distinct_respects_exclusions(self, small_space, rng):
        exclude = small_space.sample_distinct(5, rng)
        sample = small_space.sample_distinct(10, rng, exclude=exclude)
        assert not (set(sample) & set(exclude))

    def test_sample_distinct_can_exhaust_space(self, small_space, rng):
        sample = small_space.sample_distinct(small_space.size, rng)
        assert len(sample) == small_space.size
        assert len(set(sample)) == small_space.size

    def test_sample_more_than_available_raises(self, small_space, rng):
        with pytest.raises(ValueError):
            small_space.sample_distinct(small_space.size + 1, rng)

    def test_parameter_lookup(self, small_space):
        assert small_space.parameter("T_j").kind is ParameterKind.CACHE_TILE
        with pytest.raises(KeyError):
            small_space.parameter("missing")

    def test_describe_mentions_every_parameter(self, small_space):
        text = small_space.describe()
        for name in ("U_i", "T_j", "RT_i"):
            assert name in text


class TestTransformLowering:
    def test_kinds_map_to_their_slots(self, small_space):
        config = small_space.to_transform_configuration((4, 32, 2))
        assert isinstance(config, TransformConfiguration)
        assert config.unroll_factor("i") == 4
        assert config.cache_tile("j") == 32
        assert config.register_tile("i") == 2

    def test_identity_configuration_lowers_to_identity(self, small_space):
        config = small_space.to_transform_configuration((1, 1, 1))
        assert config.unroll_factor("i") == 1
        assert config.cache_tile("j") is None
        assert config.register_tile("i") == 1

    def test_multiple_unrolls_on_same_loop_multiply(self):
        space = SearchSpace(
            [
                TunableParameter.unroll("U_a", "i", max_factor=4),
                TunableParameter.unroll("U_b", "i", max_factor=4),
            ]
        )
        config = space.to_transform_configuration((2, 3))
        assert config.unroll_factor("i") == 6


class TestNormalization:
    def test_normalized_shape_and_centre(self, small_space):
        features = small_space.normalize(small_space.default_configuration())
        assert features.shape == (3,)
        # The first value of each parameter lies below the midpoint.
        assert np.all(features < 0)

    def test_midpoint_maps_to_zero(self):
        space = SearchSpace([TunableParameter.unroll("U_i", "i", max_factor=3)])
        assert space.normalize((2,))[0] == pytest.approx(0.0)

    def test_normalize_many_stacks_rows(self, small_space, rng):
        configs = small_space.sample_distinct(6, rng)
        matrix = small_space.normalize_many(configs)
        assert matrix.shape == (6, 3)

    def test_normalized_scale_is_of_order_one(self, small_space, rng):
        configs = small_space.sample_distinct(20, rng)
        matrix = small_space.normalize_many(configs)
        assert np.all(np.abs(matrix) < 2.5)


@given(st.integers(min_value=0, max_value=2 ** 32 - 1))
@settings(max_examples=25, deadline=None)
def test_random_configurations_always_valid_property(seed):
    space = SearchSpace(
        [
            TunableParameter.unroll("U_i", "i", max_factor=7),
            TunableParameter.cache_tile("T_j", "j", values=(1, 8, 64, 512)),
        ]
    )
    rng = np.random.default_rng(seed)
    configuration = space.random_configuration(rng)
    assert configuration in space
    lowered = space.to_transform_configuration(configuration)
    assert lowered.unroll_factor("i") in range(1, 8)
