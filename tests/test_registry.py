"""Tests of the declarative experiment registry and its two backends.

The load-bearing guarantees:

* **round trip** — every registered spec decomposes into units, executes
  sharded over the task-queue backend, and folds to a report identical to
  the serial in-memory path; artifacts with a pre-refactor serial driver
  additionally match that driver's output (pinned on ``mm``, whose noise
  model is stateless, so per-unit benchmark rebuilds cannot drift);
* **multi-host claims** — two runners sharing one run directory never
  execute the same unit twice (O_EXCL claim files), and a claim whose
  lease expired is taken over by exactly one contender;
* **kill → resume on a migrated artifact** — a partially executed
  ``table2`` run resumed from its published results renders bit-identically
  to an uninterrupted run (the SIGKILL variant over the full artifact set
  lives in ``test_runner.py``);
* **streaming reports** — ``run_all`` emits each artifact's section as it
  completes, so a killed report run keeps its finished sections.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.core.learner import LearnerConfig
from repro.experiments.config import ExperimentScale
from repro.experiments.figure1 import run_figure1
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure6 import run_figure6
from repro.experiments.noise_robustness import run_noise_robustness
from repro.experiments.registry import (
    DEFAULT_ARTIFACTS,
    UnitContext,
    WorkUnit,
    get_spec,
    resolve_artifacts,
    run_artifacts,
    spec_names,
)
from repro.experiments.runner import (
    ExperimentRunner,
    _execute_unit,
    _try_claim,
)
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2

ALL_ARTIFACTS = (
    "table2",
    "figure1",
    "figure2",
    "table1",
    "figure5",
    "figure6",
    "noise_robustness",
    "acquisition-ablation",
    "model-ablation",
)


def _tiny_scale(benchmarks=("mm",), repetitions=1, max_examples=20):
    return ExperimentScale(
        name="test",
        benchmarks=tuple(benchmarks),
        learner=LearnerConfig(
            n_initial=4,
            seed_observations=4,
            n_candidates=12,
            max_training_examples=max_examples,
            reference_size=8,
            evaluation_interval=5,
            tree_particles=6,
        ),
        repetitions=repetitions,
        test_size=30,
        test_observations=3,
        dataset_configurations=30,
        dataset_observations=4,
        figure1_grid=4,
        seed=2017,
    )


SCALE = _tiny_scale()


class TestRegistry:
    def test_every_artifact_is_registered(self):
        assert set(ALL_ARTIFACTS) <= set(spec_names())

    def test_default_artifacts_cover_the_report(self):
        assert DEFAULT_ARTIFACTS == (
            "table2",
            "figure1",
            "figure2",
            "table1",
            "figure5",
            "figure6",
        )

    def test_unknown_artifact_rejected(self):
        with pytest.raises(KeyError, match="unknown artifact"):
            get_spec("table3")

    def test_dependency_closure_and_order(self):
        ordered = [s.name for s in resolve_artifacts(["figure6", "figure5"])]
        assert ordered == ["table1", "figure6", "figure5"]

    def test_unit_params_round_trip_through_json(self):
        for name in ALL_ARTIFACTS:
            for unit in get_spec(name).work_units(SCALE):
                record = json.loads(json.dumps(unit.to_record()))
                assert WorkUnit.from_record(record) == unit

    def test_fingerprints_differ_across_scales(self):
        spec = get_spec("table1")
        assert spec.fingerprint(SCALE) != spec.fingerprint(
            _tiny_scale(max_examples=24)
        )


class TestRoundTrip:
    """Every registered spec: decompose → execute sharded → fold equals the
    serial in-memory path (and the pre-refactor serial driver where one
    exists)."""

    @pytest.fixture(scope="class")
    def serial(self):
        return run_artifacts(SCALE, list(ALL_ARTIFACTS))

    @pytest.fixture(scope="class")
    def sharded(self, tmp_path_factory):
        run_dir = tmp_path_factory.mktemp("registry-roundtrip") / "run"
        runner = ExperimentRunner(
            run_dir, SCALE, artifacts=list(ALL_ARTIFACTS), checkpoint_interval=5
        )
        return runner.run(workers=2)

    @pytest.mark.parametrize("artifact", ALL_ARTIFACTS)
    def test_sharded_fold_equals_serial(self, artifact, serial, sharded):
        assert sharded[artifact].render() == serial[artifact].render()

    def test_serial_equals_driver_table1(self, serial):
        assert serial["table1"].render() == run_table1(SCALE).render()

    def test_serial_equals_driver_table2(self, serial):
        assert serial["table2"].render() == run_table2(SCALE).render()

    def test_serial_equals_driver_figure1(self, serial):
        assert serial["figure1"].render() == run_figure1(SCALE).render()

    def test_serial_equals_driver_figure2(self, serial):
        assert serial["figure2"].render() == run_figure2(SCALE).render()

    def test_serial_equals_driver_figure6(self, serial):
        assert serial["figure6"].render() == run_figure6(SCALE).render()

    def test_serial_equals_driver_noise_robustness(self, serial):
        driver = run_noise_robustness(SCALE, benchmark_name="mm")
        assert serial["noise_robustness"].render() == driver.render()

    def test_workers_do_not_change_serial_results(self, serial):
        pooled = run_artifacts(SCALE, ["table2"], workers=2)
        assert pooled["table2"].render() == serial["table2"].render()

    def test_ablation_reports_cover_every_variant(self, serial):
        acquisition = serial["acquisition-ablation"]
        assert {row.variant for row in acquisition.rows} == {"alc", "alm", "random"}
        model = serial["model-ablation"]
        assert {row.variant for row in model.rows} == {"dynamic-tree", "gp", "knn"}
        for result in (acquisition, model):
            reference_rows = [
                row for row in result.rows if row.variant == result.reference_variant
            ]
            assert all(row.cost_ratio_vs_reference == 1.0 for row in reference_rows)


class TestClaimLocking:
    def test_claim_is_exclusive(self, tmp_path):
        (tmp_path / "claims").mkdir()
        (tmp_path / "log").mkdir()
        claim = tmp_path / "claims" / "unit.claim"
        assert _try_claim(claim, lease_seconds=60.0)
        assert not _try_claim(claim, lease_seconds=60.0)

    def test_stale_claim_is_taken_over_and_journalled(self, tmp_path):
        (tmp_path / "claims").mkdir()
        (tmp_path / "log").mkdir()
        claim = tmp_path / "claims" / "unit.claim"
        stale = {
            "host": "dead-host",
            "pid": 1,
            "acquired": time.time() - 1000,
            "renewed": time.time() - 1000,
            "lease_seconds": 1.0,
        }
        claim.write_text(json.dumps(stale))
        assert _try_claim(claim, lease_seconds=60.0)
        events = [
            json.loads(line)["event"]
            for line in (tmp_path / "log" / "events.jsonl").read_text().splitlines()
        ]
        assert events == ["takeover", "claim"]
        # The new claim belongs to us now and excludes further contenders.
        assert not _try_claim(claim, lease_seconds=60.0)

    def test_fresh_claim_makes_execute_unit_step_aside(self, tmp_path):
        scale = SCALE
        runner = ExperimentRunner(tmp_path / "run", scale, artifacts=["table2"])
        manifest = runner.prepare()
        unit = manifest.units[0]
        claim = tmp_path / "run" / "claims" / f"{unit.unit_id}.claim"
        assert _try_claim(claim, lease_seconds=600.0)
        unit_id, status = _execute_unit(
            str(tmp_path / "run"), "table2", scale, unit.to_record(), 5, 600.0
        )
        assert status == "claimed"
        assert not (tmp_path / "run" / "results" / f"{unit_id}.pkl").exists()

    def test_blocked_host_works_ahead_on_later_artifacts(self, tmp_path):
        """A host whose current artifact is fully claimed by a peer does
        not idle: it executes later artifacts' unclaimed units, and folds
        catch up once the peer publishes."""
        scale = SCALE
        run_dir = tmp_path / "run"
        runner = ExperimentRunner(
            run_dir,
            scale,
            artifacts=["table2", "figure2"],
            claim_poll_seconds=0.1,
        )
        manifest = runner.prepare()
        table2_units = [u for u in manifest.units if u.artifact == "table2"]
        figure2_unit = next(u for u in manifest.units if u.artifact == "figure2")
        claims = [
            run_dir / "claims" / f"{u.unit_id}.claim" for u in table2_units
        ]
        for claim in claims:
            assert _try_claim(claim, lease_seconds=600.0)

        outcome = {}
        worker = threading.Thread(
            target=lambda: outcome.update(runner.run(workers=1, resume=True))
        )
        worker.start()
        try:
            figure2_result = run_dir / "results" / f"{figure2_unit.unit_id}.pkl"
            deadline = time.monotonic() + 120
            while not figure2_result.exists():
                assert time.monotonic() < deadline, "work-ahead never happened"
                time.sleep(0.05)
            # Work-ahead proof: figure2 (a later artifact) is published
            # while every table2 unit is still claimed by the "peer".
            assert not any(
                (run_dir / "results" / f"{u.unit_id}.pkl").exists()
                for u in table2_units
            )
        finally:
            # The peer "releases" its units; the blocked host claims them.
            for claim in claims:
                claim.unlink(missing_ok=True)
            worker.join(timeout=300)
        assert not worker.is_alive()
        assert set(outcome) == {"table2", "figure2"}

    def test_two_hosts_share_one_queue_without_duplicate_execution(self, tmp_path):
        """Two runners (worker loops with independent claim state) pointed
        at one run directory: every unit executes exactly once, both merges
        agree — the multi-host contention guarantee."""
        scale = _tiny_scale(repetitions=2)
        run_dir = tmp_path / "run"
        ExperimentRunner(run_dir, scale, artifacts=["table1"]).prepare()
        outcomes = {}
        errors = []

        def host(tag):
            try:
                runner = ExperimentRunner(
                    run_dir,
                    scale,
                    artifacts=["table1"],
                    claim_poll_seconds=0.1,
                )
                outcomes[tag] = runner.run(workers=1, resume=True)
            except BaseException as exc:  # pragma: no cover - surfaced below
                errors.append((tag, exc))

        threads = [threading.Thread(target=host, args=(t,)) for t in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
        assert not errors, errors
        assert set(outcomes) == {"a", "b"}
        assert (
            outcomes["a"]["table1"].render() == outcomes["b"]["table1"].render()
        )
        events = [
            json.loads(line)
            for line in (run_dir / "log" / "events.jsonl").read_text().splitlines()
        ]
        manifest_units = {
            unit.unit_id
            for unit in ExperimentRunner(
                run_dir, scale, artifacts=["table1"]
            ).prepare(resume=True).units
        }
        published = [e["unit"] for e in events if e["event"] == "publish"]
        executed = [e["unit"] for e in events if e["event"] == "execute"]
        assert sorted(published) == sorted(set(published)), "a unit published twice"
        assert sorted(executed) == sorted(set(executed)), "a unit executed twice"
        assert set(published) == manifest_units


class TestKillResumeMigratedArtifact:
    def test_partial_table2_run_resumes_bit_identically(self, tmp_path):
        """Kill→resume on a newly migrated artifact: a run that stopped
        after publishing only some of table2's units, resumed later,
        renders exactly like an uninterrupted run."""
        scale = _tiny_scale(benchmarks=("mm", "adi"))
        full = ExperimentRunner(
            tmp_path / "full", scale, artifacts=["table2"]
        ).run(workers=1)

        partial_dir = tmp_path / "partial"
        partial = ExperimentRunner(partial_dir, scale, artifacts=["table2"])
        manifest = partial.prepare()
        # Simulate the kill: only the first unit got published.
        first = manifest.units[0]
        _execute_unit(
            str(partial_dir), "table2", scale, first.to_record(), 5, 600.0
        )
        assert len(partial.pending_units(manifest)) == len(manifest.units) - 1

        resumed = ExperimentRunner(
            partial_dir, scale, artifacts=["table2"]
        ).run(workers=1, resume=True)
        assert resumed["table2"].render() == full["table2"].render()


class TestStreamingReport:
    def test_sections_stream_in_order(self):
        from repro.experiments.run_all import run_all

        seen = []
        report = run_all(
            SCALE,
            artifacts=["table2", "figure2"],
            section_sink=lambda name, text: seen.append(name),
        )
        assert seen == ["header", "table2", "figure2", "footer"]
        assert "Table 2" in report and "Figure 2" in report

    def test_dependency_only_artifacts_are_not_rendered(self):
        from repro.experiments.run_all import run_all

        seen = []
        report = run_all(
            SCALE,
            artifacts=["figure5"],
            section_sink=lambda name, text: seen.append(name),
        )
        # table1 runs (figure5 folds from it) but is not part of the report.
        assert seen == ["header", "figure5", "footer"]
        assert "Figure 5" in report
        assert "Table 1:" not in report

    def test_cli_output_streams_and_truncates(self, tmp_path):
        from repro.experiments.run_all import main

        def sections(text):
            # Everything but the wall-time footer, which is timing-dependent.
            return text.split("wall time")[0]

        out = tmp_path / "report.txt"
        assert main(["--scale", "smoke", "--only", "figure2", "--output", str(out)]) == 0
        first = out.read_text("utf-8")
        assert "Figure 2" in first
        # Re-running into the same file starts over instead of appending.
        assert main(["--scale", "smoke", "--only", "figure2", "--output", str(out)]) == 0
        assert sections(out.read_text("utf-8")) == sections(first)

    def test_cli_rejects_unknown_artifact(self, capsys):
        from repro.experiments.run_all import main

        with pytest.raises(SystemExit):
            main(["--only", "table3"])
        assert "unknown artifact" in capsys.readouterr().err

    def test_cli_rejects_only_with_paper_scale_smoke(self, capsys):
        from repro.experiments.run_all import main

        with pytest.raises(SystemExit):
            main(["--paper-scale-smoke", "--only", "table2"])
        assert "--only does not apply" in capsys.readouterr().err
