"""Tests for the loop-nest IR data structures."""

from __future__ import annotations

import pytest

from repro.ir.expr import Var
from repro.ir.loopnest import (
    ArrayDecl,
    ArrayRef,
    Kernel,
    Loop,
    Statement,
    loop_by_name,
    render,
    walk_loops,
    walk_statements,
)


class TestArrayDecl:
    def test_footprint(self):
        decl = ArrayDecl("A", ("N", "N"), element_bytes=8)
        assert decl.element_count({"N": 4}) == 16
        assert decl.footprint_bytes({"N": 4}) == 128

    def test_rejects_bad_element_size(self):
        with pytest.raises(ValueError):
            ArrayDecl("A", ("N",), element_bytes=0)


class TestStatement:
    def test_refs_order(self):
        write = ArrayRef("C", (Var("i"),))
        read = ArrayRef("A", (Var("i"),))
        stmt = Statement(writes=(write,), reads=(read,), flops=1)
        assert stmt.refs() == (write, read)

    def test_rejects_empty_statement(self):
        with pytest.raises(ValueError):
            Statement(writes=(), reads=(), flops=1)

    def test_rejects_negative_flops(self):
        with pytest.raises(ValueError):
            Statement(writes=(ArrayRef("C", (Var("i"),)),), reads=(), flops=-1)

    def test_free_vars(self):
        stmt = Statement(
            writes=(ArrayRef("C", (Var("i"), Var("j"))),),
            reads=(ArrayRef("A", (Var("k"),)),),
        )
        assert stmt.free_vars() == frozenset({"i", "j", "k"})


class TestLoop:
    def test_trip_count(self):
        loop = Loop(
            var="i", lower=0, upper="N",
            body=(Statement(writes=(ArrayRef("A", (Var("i"),)),), reads=()),),
        )
        assert loop.trip_count({"N": 10}) == 10

    def test_trip_count_with_step(self):
        loop = Loop(
            var="i", lower=0, upper=10, step=3,
            body=(Statement(writes=(ArrayRef("A", (Var("i"),)),), reads=()),),
        )
        assert loop.trip_count({}) == 4

    def test_empty_range(self):
        loop = Loop(
            var="i", lower=5, upper=5,
            body=(Statement(writes=(ArrayRef("A", (Var("i"),)),), reads=()),),
        )
        assert loop.trip_count({}) == 0

    def test_rejects_empty_body(self):
        with pytest.raises(ValueError):
            Loop(var="i", lower=0, upper=10, body=())

    def test_rejects_bad_step_and_unroll(self):
        body = (Statement(writes=(ArrayRef("A", (Var("i"),)),), reads=()),)
        with pytest.raises(ValueError):
            Loop(var="i", lower=0, upper=10, body=body, step=0)
        with pytest.raises(ValueError):
            Loop(var="i", lower=0, upper=10, body=body, unrolled_by=0)


class TestKernel:
    def test_validation_passes_for_tiny_kernel(self, tiny_kernel):
        assert tiny_kernel.name == "tiny"
        assert tiny_kernel.loop_names() == ["i", "j"]

    def test_undeclared_array_rejected(self):
        stmt = Statement(writes=(ArrayRef("Z", (Var("i"),)),), reads=())
        loop = Loop(var="i", lower=0, upper="N", body=(stmt,))
        with pytest.raises(ValueError, match="undeclared array"):
            Kernel(name="bad", sizes={"N": 8}, arrays=(), loops=(loop,))

    def test_unbound_subscript_rejected(self):
        stmt = Statement(writes=(ArrayRef("A", (Var("q"),)),), reads=())
        loop = Loop(var="i", lower=0, upper="N", body=(stmt,))
        with pytest.raises(ValueError, match="unbound"):
            Kernel(
                name="bad", sizes={"N": 8},
                arrays=(ArrayDecl("A", ("N",)),), loops=(loop,),
            )

    def test_duplicate_arrays_rejected(self, tiny_kernel):
        with pytest.raises(ValueError, match="duplicate"):
            Kernel(
                name="bad",
                sizes={"N": 8},
                arrays=(ArrayDecl("A", ("N",)), ArrayDecl("A", ("N",))),
                loops=tiny_kernel.loops,
            )

    def test_kernel_needs_loops(self):
        with pytest.raises(ValueError):
            Kernel(name="bad", sizes={}, arrays=(), loops=())

    def test_array_lookup(self, tiny_kernel):
        assert tiny_kernel.array("A").name == "A"
        with pytest.raises(KeyError):
            tiny_kernel.array("missing")

    def test_total_footprint(self, tiny_kernel):
        # Three 64x64 arrays of 8-byte doubles.
        assert tiny_kernel.total_footprint_bytes() == 3 * 64 * 64 * 8

    def test_with_loops_returns_new_kernel(self, tiny_kernel):
        clone = tiny_kernel.with_loops(tiny_kernel.loops)
        assert clone is not tiny_kernel
        assert clone.loop_names() == tiny_kernel.loop_names()


class TestWalkers:
    def test_walk_loops_depth_first(self, tiny_kernel):
        names = [loop.var for loop in walk_loops(tiny_kernel.loops)]
        assert names == ["i", "j"]

    def test_walk_statements(self, tiny_kernel):
        statements = list(walk_statements(tiny_kernel.loops))
        assert len(statements) == 1
        assert statements[0].label == "update"

    def test_loop_by_name(self, tiny_kernel):
        assert loop_by_name(tiny_kernel, "j").var == "j"
        with pytest.raises(KeyError):
            loop_by_name(tiny_kernel, "zz")


class TestRender:
    def test_render_contains_structure(self, tiny_kernel):
        text = render(tiny_kernel)
        assert "kernel tiny" in text
        assert "#define N 64" in text
        assert "for (i = 0; i < N; i++)" in text
        assert "C[i][j]" in text
