"""Tests for the conjugate Gaussian leaf model of the dynamic tree."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.leaf import GaussianLeafModel, NIGPrior


class TestNIGPrior:
    def test_validation(self):
        with pytest.raises(ValueError):
            NIGPrior(kappa=0.0)
        with pytest.raises(ValueError):
            NIGPrior(alpha=1.0)
        with pytest.raises(ValueError):
            NIGPrior(beta=0.0)

    def test_from_observations_matches_scale(self):
        values = [10.0, 12.0, 11.0, 9.0]
        prior = NIGPrior.from_observations(values, alpha=2.0)
        assert prior.mean == pytest.approx(10.5)
        # E[sigma^2] = beta / (alpha - 1) equals the sample variance.
        assert prior.beta / (prior.alpha - 1.0) == pytest.approx(np.var(values, ddof=1))

    def test_from_single_observation(self):
        prior = NIGPrior.from_observations([5.0])
        assert prior.mean == 5.0
        assert prior.beta > 0

    def test_from_empty_raises(self):
        with pytest.raises(ValueError):
            NIGPrior.from_observations([])


class TestGaussianLeafModel:
    @pytest.fixture
    def prior(self):
        return NIGPrior(mean=1.0, kappa=0.1, alpha=3.0, beta=0.5)

    def test_empty_leaf_predicts_prior(self, prior):
        leaf = GaussianLeafModel(prior)
        assert leaf.count == 0
        assert leaf.predictive_mean() == prior.mean
        assert leaf.log_marginal_likelihood() == 0.0

    def test_posterior_mean_shrinks_towards_data(self, prior):
        leaf = GaussianLeafModel.from_values(prior, [5.0] * 50)
        assert leaf.predictive_mean() == pytest.approx(5.0, rel=0.01)

    def test_predictive_variance_decreases_with_data(self, prior, rng):
        values = rng.normal(2.0, 0.1, size=100)
        few = GaussianLeafModel.from_values(prior, values[:3])
        many = GaussianLeafModel.from_values(prior, values)
        assert many.predictive_variance() < few.predictive_variance()

    def test_add_and_remove_are_inverse(self, prior):
        leaf = GaussianLeafModel.from_values(prior, [1.0, 2.0, 3.0])
        before = leaf.posterior()
        leaf.add(9.0)
        leaf.remove(9.0)
        after = leaf.posterior()
        assert before == pytest.approx(after)

    def test_remove_from_empty_raises(self, prior):
        with pytest.raises(ValueError):
            GaussianLeafModel(prior).remove(1.0)

    def test_merge_equals_joint_fit(self, prior):
        a = GaussianLeafModel.from_values(prior, [1.0, 2.0])
        b = GaussianLeafModel.from_values(prior, [3.0, 4.0])
        merged = a.merge(b)
        joint = GaussianLeafModel.from_values(prior, [1.0, 2.0, 3.0, 4.0])
        assert merged.posterior() == pytest.approx(joint.posterior())
        assert merged.log_marginal_likelihood() == pytest.approx(
            joint.log_marginal_likelihood()
        )

    def test_copy_is_independent(self, prior):
        leaf = GaussianLeafModel.from_values(prior, [1.0])
        clone = leaf.copy()
        clone.add(100.0)
        assert leaf.count == 1
        assert clone.count == 2

    def test_predictive_logpdf_is_a_density(self, prior):
        """The predictive log-density integrates to ~1 over a wide grid."""
        leaf = GaussianLeafModel.from_values(prior, [2.0, 2.1, 1.9, 2.05])
        grid = np.linspace(-20, 24, 20001)
        densities = np.exp([leaf.predictive_logpdf(v) for v in grid])
        integral = np.trapezoid(densities, grid)
        assert integral == pytest.approx(1.0, abs=0.02)

    def test_logpdf_peaks_at_posterior_mean(self, prior):
        leaf = GaussianLeafModel.from_values(prior, [2.0, 2.2, 1.8])
        at_mean = leaf.predictive_logpdf(leaf.predictive_mean())
        away = leaf.predictive_logpdf(leaf.predictive_mean() + 5.0)
        assert at_mean > away

    def test_marginal_likelihood_prefers_consistent_data(self, prior):
        tight = GaussianLeafModel.from_values(prior, [1.0, 1.01, 0.99, 1.0])
        loose = GaussianLeafModel.from_values(prior, [1.0, 4.0, -2.0, 7.0])
        assert tight.log_marginal_likelihood() > loose.log_marginal_likelihood()

    def test_splitting_separated_clusters_improves_marginal(self, prior):
        """The grow move's scoring foundation: separating two clusters wins."""
        cluster_a = [1.0, 1.05, 0.95, 1.02]
        cluster_b = [5.0, 5.05, 4.95, 5.02]
        joint = GaussianLeafModel.from_values(prior, cluster_a + cluster_b)
        split_a = GaussianLeafModel.from_values(prior, cluster_a)
        split_b = GaussianLeafModel.from_values(prior, cluster_b)
        assert (
            split_a.log_marginal_likelihood() + split_b.log_marginal_likelihood()
            > joint.log_marginal_likelihood()
        )


# --------------------------------------------------------------------------
# Property-based tests
# --------------------------------------------------------------------------

values_strategy = st.lists(
    st.floats(min_value=0.01, max_value=100.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=30,
)


@given(values_strategy)
@settings(max_examples=60, deadline=None)
def test_posterior_mean_between_prior_and_data_property(values):
    prior = NIGPrior(mean=0.0, kappa=1.0, alpha=2.5, beta=1.0)
    leaf = GaussianLeafModel.from_values(prior, values)
    sample_mean = sum(values) / len(values)
    low, high = sorted([prior.mean, sample_mean])
    assert low - 1e-9 <= leaf.predictive_mean() <= high + 1e-9


@given(values_strategy)
@settings(max_examples=60, deadline=None)
def test_predictive_variance_positive_property(values):
    prior = NIGPrior(mean=0.0, kappa=0.5, alpha=2.5, beta=1.0)
    leaf = GaussianLeafModel.from_values(prior, values)
    assert leaf.predictive_variance() > 0
    assert math.isfinite(leaf.log_marginal_likelihood())


@given(values_strategy, st.floats(min_value=0.01, max_value=100.0))
@settings(max_examples=60, deadline=None)
def test_incremental_add_matches_batch_property(values, extra):
    prior = NIGPrior(mean=1.0, kappa=0.2, alpha=3.0, beta=0.7)
    incremental = GaussianLeafModel.from_values(prior, values)
    incremental.add(extra)
    batch = GaussianLeafModel.from_values(prior, values + [extra])
    assert incremental.posterior() == pytest.approx(batch.posterior())
