"""Tests for the simulated profiler and its cost ledger."""

from __future__ import annotations

import numpy as np
import pytest

from repro.measurement.noise import NoiseModel, NoiseProfile, noise_model_from_profile
from repro.measurement.profiler import CostLedger, Profiler

from _helpers import StubProgram


class TestCostLedger:
    def test_totals(self):
        ledger = CostLedger()
        ledger.charge_compile(2.0)
        ledger.charge_run(1.5)
        ledger.charge_run(0.5)
        assert ledger.compile_seconds == 2.0
        assert ledger.runtime_seconds == 2.0
        assert ledger.total_seconds == 4.0
        assert ledger.compilations == 1
        assert ledger.executions == 2

    def test_rejects_negative(self):
        ledger = CostLedger()
        with pytest.raises(ValueError):
            ledger.charge_compile(-1.0)
        with pytest.raises(ValueError):
            ledger.charge_run(-1.0)

    def test_snapshot_is_independent(self):
        ledger = CostLedger()
        ledger.charge_run(1.0)
        snap = ledger.snapshot()
        ledger.charge_run(1.0)
        assert snap.runtime_seconds == 1.0
        assert ledger.runtime_seconds == 2.0


class TestProfiler:
    def test_noiseless_measurement_equals_truth(self, stub_program, rng):
        profiler = Profiler(stub_program, rng=rng)
        values = profiler.measure((1, 2), repetitions=3)
        assert np.allclose(values, 1.0 + 0.1 * 1 + 0.01 * 2)

    def test_compile_charged_once_per_configuration(self, stub_program, rng):
        profiler = Profiler(stub_program, rng=rng)
        profiler.measure((0, 0), repetitions=2)
        profiler.measure((0, 0), repetitions=2)
        profiler.measure((1, 0), repetitions=1)
        assert profiler.ledger.compilations == 2
        assert profiler.ledger.compile_seconds == pytest.approx(1.0)
        assert profiler.ledger.executions == 5

    def test_compile_charged_every_time_when_disabled(self, stub_program, rng):
        profiler = Profiler(stub_program, rng=rng, charge_compile_once=False)
        profiler.measure((0, 0))
        profiler.measure((0, 0))
        assert profiler.ledger.compilations == 2

    def test_runtime_cost_accumulates_observed_values(self, stub_program, rng):
        profiler = Profiler(stub_program, rng=rng)
        values = profiler.measure((3, 0), repetitions=4)
        assert profiler.ledger.runtime_seconds == pytest.approx(float(values.sum()))

    def test_observation_counts_and_summary(self, stub_program, rng):
        profiler = Profiler(stub_program, rng=rng)
        assert profiler.observation_count((5, 5)) == 0
        profiler.measure((5, 5), repetitions=3)
        profiler.measure((5, 5), repetitions=2)
        assert profiler.observation_count((5, 5)) == 5
        summary = profiler.summary((5, 5))
        assert summary.count == 5
        assert profiler.mean_runtime((5, 5)) == pytest.approx(summary.mean)

    def test_unknown_configuration_raises(self, stub_program, rng):
        profiler = Profiler(stub_program, rng=rng)
        with pytest.raises(KeyError):
            profiler.summary((9, 9))
        with pytest.raises(KeyError):
            profiler.mean_runtime((9, 9))

    def test_rejects_zero_repetitions(self, stub_program, rng):
        profiler = Profiler(stub_program, rng=rng)
        with pytest.raises(ValueError):
            profiler.measure((1, 1), repetitions=0)

    def test_measure_many(self, stub_program, rng):
        profiler = Profiler(stub_program, rng=rng)
        results = profiler.measure_many([(0, 0), (1, 1)], repetitions=2)
        assert len(results) == 2
        assert all(r.shape == (2,) for r in results)

    def test_observations_record_order(self, stub_program, rng):
        profiler = Profiler(stub_program, rng=rng)
        profiler.measure((1, 1), repetitions=2)
        observations = profiler.observations
        assert len(observations) == 2
        assert observations[0].index == 1
        assert observations[1].index == 2
        assert observations[0].configuration == (1, 1)

    def test_noisy_measurements_vary_but_stay_reproducible(self):
        program = StubProgram(noise_model_from_profile(NoiseProfile(interference_sigma=0.05)))
        a = Profiler(program, rng=np.random.default_rng(11)).measure((1, 1), repetitions=10)
        program2 = StubProgram(noise_model_from_profile(NoiseProfile(interference_sigma=0.05)))
        b = Profiler(program2, rng=np.random.default_rng(11)).measure((1, 1), repetitions=10)
        np.testing.assert_allclose(a, b)
        assert np.std(a) > 0

    def test_spapt_benchmark_satisfies_protocol(self, mm_benchmark, rng):
        profiler = Profiler(mm_benchmark, rng=rng)
        configuration = mm_benchmark.search_space.default_configuration()
        values = profiler.measure(configuration, repetitions=3)
        assert values.shape == (3,)
        assert np.all(values > 0)
        assert profiler.ledger.total_seconds > 0
