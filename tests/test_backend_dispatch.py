"""Backend dispatch for the compiled SMC update kernels.

The ``DynamicTreeConfig(backend=...)`` knob selects the kernel set the
batched update runs on: ``"numpy"`` (the default, bit-exact), ``"numba"``
(njit kernels when the optional extra is installed, the *same bit-exact*
NumPy kernels otherwise) and ``"numba-fast"`` (tolerance-tested vectorized
transcendentals).  These tests pin the contract around that knob:

* configuration plumbing — validation, the model factories, and the
  learner config's ``tree_backend``;
* the automatic fallback when numba is absent (a blocked-import reload,
  so the test is meaningful even on environments where numba *is*
  installed);
* checkpoint round-trips: the backend choice is part of the pickled model
  configuration and survives kill → ``--resume``;
* the zero-compile invariant: the flat forest is compiled exactly once
  per particle for the lifetime of a model — updates derive compilations
  incrementally and never call :meth:`FlatTree.compile` again;
* the ``numba-fast`` deviation budget, at the kernel level and end to end.

Trajectory bit-identity of ``backend="numba"`` against the
``vectorized=False`` oracle is covered by ``tests/test_batched_update.py``.
"""

from __future__ import annotations

import builtins
import importlib.util
import pickle

import numpy as np
import pytest

import repro.models.compiled_kernels as compiled_kernels
from repro.core.evaluation import build_test_set
from repro.core.learner import ActiveLearner, LearnerConfig
from repro.core.plans import sequential_plan
from repro.models import make_model, model_factory
from repro.models.compiled_kernels import (
    BACKENDS,
    get_kernels,
    log1p_map_exact,
    log_map_exact,
)
from repro.models.dynamic_tree import DynamicTreeConfig, DynamicTreeRegressor
from repro.models.flat_tree import FlatTree
from repro.spapt.suite import get_benchmark


def _piecewise_data(n, dims, seed, noise=0.3):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-2, 2, size=(n, dims))
    y = (
        np.where(X[:, 0] > 0.3, 2.0, -1.0)
        + 0.4 * X[:, 1]
        + rng.normal(0, noise, size=n)
    )
    return X, y


class TestBackendConfig:
    def test_dynamic_tree_config_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            DynamicTreeConfig(backend="cuda")

    def test_learner_config_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="tree_backend"):
            LearnerConfig(tree_backend="cuda")

    def test_get_kernels_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            get_kernels("cuda")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_make_model_threads_backend(self, backend):
        model = make_model("dynamic-tree", tree_backend=backend)
        assert model.config.backend == backend

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_model_factory_threads_backend(self, backend):
        factory = model_factory("dynamic-tree", tree_particles=7, tree_backend=backend)
        model = factory(np.random.default_rng(0))
        assert model.config.backend == backend
        assert model.config.n_particles == 7

    def test_learner_default_factory_uses_tree_backend(self):
        benchmark = get_benchmark("mm")
        learner = ActiveLearner(
            benchmark,
            config=LearnerConfig(tree_backend="numba", tree_particles=3),
            rng=np.random.default_rng(0),
        )
        model = learner._default_model_factory(np.random.default_rng(1))
        assert model.config.backend == "numba"


class TestNumbaAbsentFallback:
    """``backend="numba"`` must degrade to the bit-exact NumPy kernels."""

    @pytest.fixture()
    def kernels_without_numba(self, monkeypatch):
        """A fresh compiled_kernels module loaded with numba unimportable."""
        real_import = builtins.__import__

        def blocked(name, *args, **kwargs):
            if name == "numba" or name.startswith("numba."):
                raise ImportError("numba blocked for fallback test")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", blocked)
        spec = importlib.util.spec_from_file_location(
            "repro_compiled_kernels_nonumba", compiled_kernels.__file__
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_import_survives_and_reports_unavailable(self, kernels_without_numba):
        assert kernels_without_numba.NUMBA_AVAILABLE is False

    def test_numba_backend_resolves_to_exact_numpy_kernels(
        self, kernels_without_numba
    ):
        kernels = kernels_without_numba.get_kernels("numba")
        assert kernels.jitted is False
        assert kernels.exact is True
        assert kernels.route_all is kernels_without_numba.route_all_numpy
        assert kernels.log_array is kernels_without_numba.log_map_exact
        assert kernels.log1p_array is kernels_without_numba.log1p_map_exact

    def test_numba_fast_fallback_is_fast_flavour(self, kernels_without_numba):
        kernels = kernels_without_numba.get_kernels("numba-fast")
        assert kernels.jitted is False
        assert kernels.exact is False

    def test_fallback_reweight_matches_numpy_backend_bitwise(
        self, kernels_without_numba
    ):
        rng = np.random.default_rng(3)
        cache = rng.normal(size=(40, 6))
        cache[:, 3] = np.abs(cache[:, 3]) + 0.5  # dof * scale > 0
        cache[:, 4] = np.abs(cache[:, 4])
        leaf_ids = rng.integers(0, 40, size=25)
        via_numba = kernels_without_numba.get_kernels("numba").reweight_log_weights(
            cache, leaf_ids, 0.37
        )
        via_numpy = get_kernels("numpy").reweight_log_weights(cache, leaf_ids, 0.37)
        assert via_numba.tolist() == via_numpy.tolist()

    def test_model_trajectory_identical_without_numba(self):
        """End to end: a ``backend="numba"`` model behaves exactly like the
        default model in this process (whether the kernels are jitted or
        the fallback — both sides of the contract are bit-exact)."""
        X, y = _piecewise_data(80, 3, 5)
        kwargs = dict(n_particles=12, resample_threshold=0.9)
        compiled = DynamicTreeRegressor(
            DynamicTreeConfig(backend="numba", **kwargs),
            rng=np.random.default_rng(2),
        )
        default = DynamicTreeRegressor(
            DynamicTreeConfig(backend="numpy", **kwargs),
            rng=np.random.default_rng(2),
        )
        compiled.fit(X[:40], y[:40])
        default.fit(X[:40], y[:40])
        for i in range(40, 80):
            compiled.update(X[i], float(y[i]))
            default.update(X[i], float(y[i]))
        fast = compiled.predict(X[:7])
        slow = default.predict(X[:7])
        assert fast.mean.tolist() == slow.mean.tolist()
        assert fast.variance.tolist() == slow.variance.tolist()
        assert compiled.leaf_counts() == default.leaf_counts()


class TestNumbaFastTolerance:
    """The documented ``numba-fast`` deviation: vectorized ``np.log`` /
    ``np.log1p`` may differ from the scalar-rounded maps by an ulp."""

    def test_fast_log_maps_within_tolerance(self):
        rng = np.random.default_rng(11)
        values = np.concatenate(
            [rng.uniform(1e-12, 1e3, 500), rng.uniform(1.0 - 1e-9, 1.0 + 1e-9, 100)]
        )
        kernels = get_kernels("numba-fast")
        np.testing.assert_allclose(
            kernels.log_array(values), log_map_exact(values), rtol=1e-14, atol=0.0
        )
        np.testing.assert_allclose(
            kernels.log1p_array(values),
            log1p_map_exact(values),
            rtol=1e-14,
            atol=0.0,
        )

    def test_fast_trajectory_close_to_reference(self):
        X, y = _piecewise_data(90, 3, 7)
        fast = DynamicTreeRegressor(
            DynamicTreeConfig(n_particles=12, backend="numba-fast"),
            rng=np.random.default_rng(4),
        )
        reference = DynamicTreeRegressor(
            DynamicTreeConfig(n_particles=12, vectorized=False),
            rng=np.random.default_rng(4),
        )
        fast.fit(X[:45], y[:45])
        reference.fit(X[:45], y[:45])
        for i in range(45, 90):
            fast.update(X[i], float(y[i]))
            reference.update(X[i], float(y[i]))
        a = fast.predict(X[:7])
        b = reference.predict(X[:7])
        # The trees may diverge only if an ulp flips a sampled move; with
        # this seed they do not, and the predictive moments track the
        # reference to float precision.
        np.testing.assert_allclose(a.mean, b.mean, rtol=1e-7)
        np.testing.assert_allclose(a.variance, b.variance, rtol=1e-6)


class TestCheckpointBackendRoundTrip:
    def test_backend_survives_pickle_and_resume(self):
        """Kill → resume keeps the model on the configured backend.

        The checkpoint pickles the whole model, so the backend rides along
        in its ``DynamicTreeConfig``; this pins that no resume path swaps
        the model for a default-backend rebuild.
        """
        benchmark = get_benchmark("mm")
        config = LearnerConfig(
            n_initial=4,
            seed_observations=4,
            n_candidates=12,
            max_training_examples=16,
            reference_size=8,
            evaluation_interval=5,
            tree_particles=5,
            tree_backend="numba",
        )
        test_set = build_test_set(
            benchmark, size=20, observations=2, rng=np.random.default_rng(8)
        )
        learner = ActiveLearner(
            benchmark,
            plan=sequential_plan(),
            config=config,
            rng=np.random.default_rng(9),
        )
        blobs = []
        learner.run(
            test_set,
            checkpoint_interval=4,
            checkpoint_sink=lambda ckpt: blobs.append(
                pickle.dumps(ckpt, protocol=pickle.HIGHEST_PROTOCOL)
            ),
        )
        assert blobs
        checkpoint = pickle.loads(blobs[0])
        assert checkpoint.model.config.backend == "numba"

        resumed_learner = ActiveLearner(
            benchmark,
            plan=sequential_plan(),
            config=config,
            rng=np.random.default_rng(999),
        )
        result = resumed_learner.run(test_set, resume=checkpoint)
        assert result.model.config.backend == "numba"


class TestZeroCompileInvariant:
    def test_flat_tree_compiled_exactly_once_per_particle(self, monkeypatch):
        """Updates never recompile the flat forest.

        :meth:`FlatTree.compile` runs exactly ``n_particles`` times for the
        lifetime of a model: once per particle when the forest is first
        built.  Every later structural move derives the new compilation
        incrementally (``grow_at``/``prune_at``) and resample copies share
        compilations copy-on-write, so a long update/predict interleaving
        adds zero compile calls.
        """
        calls = {"count": 0}
        original = FlatTree.compile.__func__

        def counting(cls, root):
            calls["count"] += 1
            return original(cls, root)

        monkeypatch.setattr(FlatTree, "compile", classmethod(counting))

        n_particles = 11
        X, y = _piecewise_data(120, 4, 13)
        model = DynamicTreeRegressor(
            DynamicTreeConfig(n_particles=n_particles),
            rng=np.random.default_rng(6),
        )
        model.fit(X[:60], y[:60])
        model.predict(X[:3])
        assert calls["count"] == n_particles
        for i in range(60, 110):
            model.update(X[i], float(y[i]))
            if i % 5 == 0:
                model.predict(X[:3])
                model.expected_average_variance(X[:4], X[4:8])
        assert calls["count"] == n_particles
