"""Tests for the loop transformation passes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.analysis import dynamic_statement_count, innermost_bodies, max_loop_depth
from repro.ir.loopnest import Loop, Statement, loop_by_name, walk_loops, walk_statements
from repro.ir.transforms import (
    CacheTile,
    LoopUnroll,
    StripMine,
    TransformError,
    TransformPipeline,
    UnrollAndJam,
)


class TestLoopUnroll:
    def test_replicates_body(self, tiny_kernel):
        unrolled = LoopUnroll("j", 4).run(tiny_kernel)
        inner = loop_by_name(unrolled, "j")
        assert len([n for n in inner.body if isinstance(n, Statement)]) == 4
        assert inner.step == 4
        assert inner.unrolled_by == 4

    def test_factor_one_is_identity(self, tiny_kernel):
        assert LoopUnroll("j", 1).run(tiny_kernel) is tiny_kernel

    def test_unknown_loop_raises(self, tiny_kernel):
        with pytest.raises(TransformError):
            LoopUnroll("zz", 2).run(tiny_kernel)
        with pytest.raises(TransformError):
            LoopUnroll("zz", 1).run(tiny_kernel)

    def test_invalid_factor_raises(self, tiny_kernel):
        with pytest.raises(TransformError):
            LoopUnroll("j", 0).run(tiny_kernel)

    def test_replica_indices_are_offset(self, tiny_kernel):
        unrolled = LoopUnroll("j", 2).run(tiny_kernel)
        statements = list(walk_statements(unrolled.loops))
        rendered = [str(s) for s in statements]
        assert any("(j + 1)" in text for text in rendered)

    def test_does_not_mutate_original(self, tiny_kernel):
        before = dynamic_statement_count(tiny_kernel)
        LoopUnroll("j", 8).run(tiny_kernel)
        assert dynamic_statement_count(tiny_kernel) == before

    def test_composes(self, tiny_kernel):
        twice = LoopUnroll("j", 2).run(LoopUnroll("j", 2).run(tiny_kernel))
        inner = loop_by_name(twice, "j")
        assert inner.unrolled_by == 4
        assert inner.step == 4

    def test_dynamic_statement_count_preserved(self, tiny_kernel):
        """Unrolling does not change the total dynamic work (divisible trip count)."""
        unrolled = LoopUnroll("j", 4).run(tiny_kernel)
        assert dynamic_statement_count(unrolled) == dynamic_statement_count(tiny_kernel)


class TestUnrollAndJam:
    def test_outer_unroll_jams_into_inner_body(self, tiny_kernel):
        jammed = UnrollAndJam("i", 3).run(tiny_kernel)
        outer = loop_by_name(jammed, "i")
        inner = loop_by_name(jammed, "j")
        assert outer.step == 3
        assert outer.unrolled_by == 3
        # The inner loop now holds three replicas of the statement.
        assert len([n for n in inner.body if isinstance(n, Statement)]) == 3

    def test_replicas_reference_offset_outer_variable(self, tiny_kernel):
        jammed = UnrollAndJam("i", 2).run(tiny_kernel)
        rendered = [str(s) for s in walk_statements(jammed.loops)]
        assert any("(i + 1)" in text for text in rendered)

    def test_factor_one_is_identity(self, tiny_kernel):
        assert UnrollAndJam("i", 1).run(tiny_kernel) is tiny_kernel

    def test_unknown_loop_raises(self, tiny_kernel):
        with pytest.raises(TransformError):
            UnrollAndJam("zz", 2).run(tiny_kernel)


class TestStripMine:
    def test_creates_tile_and_point_loop(self, tiny_kernel):
        tiled = StripMine("j", 8).run(tiny_kernel)
        tile_loop = loop_by_name(tiled, "j_t")
        point_loop = loop_by_name(tiled, "j")
        assert tile_loop.step == 8
        assert point_loop.step == 1
        assert max_loop_depth(tiled) == 3

    def test_tile_one_is_identity(self, tiny_kernel):
        assert StripMine("j", 1).run(tiny_kernel) is tiny_kernel

    def test_dynamic_statement_count_preserved(self, tiny_kernel):
        tiled = StripMine("j", 8).run(tiny_kernel)
        assert dynamic_statement_count(tiled) == dynamic_statement_count(tiny_kernel)

    def test_rejects_duplicate_tile_variable(self, tiny_kernel):
        once = StripMine("j", 8).run(tiny_kernel)
        with pytest.raises(TransformError):
            StripMine("j", 4).run(once)

    def test_unknown_loop_raises(self, tiny_kernel):
        with pytest.raises(TransformError):
            StripMine("zz", 4).run(tiny_kernel)


class TestCacheTile:
    def test_tile_loops_are_hoisted_outermost(self, tiny_kernel):
        tiled = CacheTile(("i", "j"), (16, 16)).run(tiny_kernel)
        order = [loop.var for loop in walk_loops(tiled.loops)]
        assert order == ["i_t", "j_t", "i", "j"]

    def test_partial_tiling(self, tiny_kernel):
        tiled = CacheTile(("j",), (32,)).run(tiny_kernel)
        order = [loop.var for loop in walk_loops(tiled.loops)]
        assert "j_t" in order
        assert order.index("j_t") < order.index("j")

    def test_tile_of_one_leaves_loop_alone(self, tiny_kernel):
        tiled = CacheTile(("i", "j"), (1, 8)).run(tiny_kernel)
        order = [loop.var for loop in walk_loops(tiled.loops)]
        assert "i_t" not in order
        assert "j_t" in order

    def test_mismatched_lengths_raise(self):
        with pytest.raises(TransformError):
            CacheTile(("i",), (8, 8))

    def test_dynamic_statement_count_preserved(self, tiny_kernel):
        tiled = CacheTile(("i", "j"), (16, 8)).run(tiny_kernel)
        assert dynamic_statement_count(tiled) == dynamic_statement_count(tiny_kernel)


class TestPipeline:
    def test_applies_in_order(self, tiny_kernel):
        pipeline = TransformPipeline(
            [CacheTile(("j",), (16,)), LoopUnroll("j", 4), UnrollAndJam("i", 2)]
        )
        result = pipeline(tiny_kernel)
        assert loop_by_name(result, "j").unrolled_by == 4
        assert loop_by_name(result, "i").unrolled_by == 2
        assert "j_t" in [loop.var for loop in walk_loops(result.loops)]

    def test_empty_pipeline_is_identity(self, tiny_kernel):
        assert TransformPipeline([])(tiny_kernel) is tiny_kernel

    def test_passes_property_is_exposed(self):
        passes = (LoopUnroll("i", 2),)
        assert TransformPipeline(passes).passes == passes


# --------------------------------------------------------------------------
# Property-based tests: closed-form expectations used by the cost model.
# --------------------------------------------------------------------------


@given(factor=st.integers(min_value=1, max_value=16))
@settings(max_examples=30, deadline=None)
def test_unroll_statement_replication_property(factor):
    from repro.ir.expr import Var
    from repro.ir.loopnest import ArrayDecl, ArrayRef, Kernel

    stmt = Statement(writes=(ArrayRef("A", (Var("i"),)),), reads=())
    loop = Loop(var="i", lower=0, upper="N", body=(stmt,))
    kernel = Kernel(
        name="k", sizes={"N": 64}, arrays=(ArrayDecl("A", ("N",)),), loops=(loop,)
    )
    unrolled = LoopUnroll("i", factor).run(kernel)
    bodies = innermost_bodies(unrolled)
    assert bodies[0].statements == factor
    assert bodies[0].unroll_product == factor


@given(
    unroll=st.integers(min_value=1, max_value=8),
    jam=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=30, deadline=None)
def test_unroll_and_jam_compose_property(unroll, jam):
    from repro.ir.expr import Var
    from repro.ir.loopnest import ArrayDecl, ArrayRef, Kernel

    stmt = Statement(
        writes=(ArrayRef("C", (Var("i"), Var("j"))),),
        reads=(ArrayRef("A", (Var("i"), Var("j"))),),
    )
    inner = Loop(var="j", lower=0, upper="N", body=(stmt,))
    outer = Loop(var="i", lower=0, upper="N", body=(inner,))
    kernel = Kernel(
        name="k",
        sizes={"N": 32},
        arrays=(ArrayDecl("A", ("N", "N")), ArrayDecl("C", ("N", "N"))),
        loops=(outer,),
    )
    transformed = LoopUnroll("j", unroll).run(UnrollAndJam("i", jam).run(kernel))
    bodies = innermost_bodies(transformed)
    assert bodies[0].statements == unroll * jam
    assert bodies[0].unroll_product == unroll * jam
