"""Tests for the IR analyses used by the machine cost model."""

from __future__ import annotations

import pytest

from repro.ir.analysis import (
    dynamic_flop_count,
    dynamic_memory_refs,
    dynamic_statement_count,
    innermost_bodies,
    loop_footprint_bytes,
    max_loop_depth,
    reference_stride,
)
from repro.ir.expr import Var
from repro.ir.loopnest import ArrayDecl, ArrayRef, Kernel, Loop, Statement
from repro.spapt.kernels import build_lu, build_mm


class TestInnermostBodies:
    def test_tiny_kernel_counts(self, tiny_kernel):
        bodies = innermost_bodies(tiny_kernel)
        assert len(bodies) == 1
        body = bodies[0]
        assert body.statements == 1
        assert body.flops == 2
        assert body.loads == 3
        assert body.stores == 1
        assert body.iterations == 64 * 64
        assert body.context.variables() == ("i", "j")

    def test_multi_nest_kernel(self):
        mm = build_mm(n=32)
        bodies = innermost_bodies(mm)
        assert len(bodies) == 1
        assert bodies[0].iterations == 32 ** 3

    def test_triangular_nest_uses_average_trip(self):
        lu = build_lu(n=100)
        bodies = innermost_bodies(lu)
        update = [b for b in bodies if b.context.variables()[-1] == "j2"][0]
        # The triangular (k2, i2, j2) nest executes ~N^3/... iterations; with
        # midpoint binding the average trip of i2/j2 is about N/2.
        assert 100 * 40 * 40 < update.iterations < 100 * 60 * 60


class TestDynamicCounts:
    def test_statement_count(self, tiny_kernel):
        assert dynamic_statement_count(tiny_kernel) == 64 * 64

    def test_flop_count(self, tiny_kernel):
        assert dynamic_flop_count(tiny_kernel) == 2 * 64 * 64

    def test_memory_refs(self, tiny_kernel):
        loads, stores = dynamic_memory_refs(tiny_kernel)
        assert loads == 3 * 64 * 64
        assert stores == 64 * 64

    def test_mm_flops_match_2n3(self):
        mm = build_mm(n=64)
        assert dynamic_flop_count(mm) == 2 * 64 ** 3


class TestReferenceStride:
    def test_unit_stride_row_access(self, tiny_kernel):
        ref = ArrayRef("A", (Var("i"), Var("j")))
        assert reference_stride(ref, "j", tiny_kernel) == 1

    def test_column_access_stride_is_row_length(self, tiny_kernel):
        ref = ArrayRef("B", (Var("j"), Var("i")))
        assert reference_stride(ref, "j", tiny_kernel) == 64

    def test_invariant_reference_has_zero_stride(self, tiny_kernel):
        ref = ArrayRef("C", (Var("i"), Var("i")))
        assert reference_stride(ref, "j", tiny_kernel) == 0

    def test_coefficient_scales_stride(self, tiny_kernel):
        ref = ArrayRef("A", (Var("i"), Var("j") * 2))
        assert reference_stride(ref, "j", tiny_kernel) == 2

    def test_dimension_mismatch_raises(self, tiny_kernel):
        ref = ArrayRef("A", (Var("i"),))
        with pytest.raises(ValueError):
            reference_stride(ref, "i", tiny_kernel)


class TestFootprint:
    def test_footprints_grow_outward(self, tiny_kernel):
        bodies = innermost_bodies(tiny_kernel)
        footprints = loop_footprint_bytes(tiny_kernel, bodies[0].context)
        # One iteration of the inner loop touches less data than one iteration
        # of the outer loop (which runs the whole inner loop).
        assert footprints["i"] > footprints["j"]

    def test_outer_footprint_bounded_by_arrays(self, tiny_kernel):
        bodies = innermost_bodies(tiny_kernel)
        footprints = loop_footprint_bytes(tiny_kernel, bodies[0].context)
        assert footprints["i"] <= tiny_kernel.total_footprint_bytes()


class TestMaxLoopDepth:
    def test_tiny_kernel_depth(self, tiny_kernel):
        assert max_loop_depth(tiny_kernel) == 2

    def test_lu_depth(self):
        assert max_loop_depth(build_lu(n=32)) == 3
