"""Tests for the extensions beyond the paper's three evaluated plans.

Covers the raced-profiles-style adaptive-CI sampling plan (related work,
Leather et al.) and the noise-injection robustness study the paper leaves as
future work.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.evaluation import build_test_set
from repro.core.learner import ActiveLearner, LearnerConfig
from repro.core.plans import SamplingPlan, adaptive_ci_plan
from repro.experiments.config import ExperimentScale
from repro.experiments.noise_robustness import (
    run_noise_robustness,
    scaled_benchmark,
)
from repro.spapt.suite import get_benchmark

SMALL = LearnerConfig(
    n_initial=4,
    seed_observations=4,
    n_candidates=12,
    max_training_examples=20,
    reference_size=8,
    evaluation_interval=8,
    tree_particles=8,
)


class TestAdaptiveCIPlan:
    def test_construction(self):
        plan = adaptive_ci_plan(ci_threshold=0.02, max_observations=10)
        assert plan.ci_threshold == 0.02
        assert plan.max_observations_per_example == 10
        assert not plan.revisit
        assert plan.aggregate_mean

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            SamplingPlan("bad", 1, 5, False, ci_threshold=0.0)

    def test_quiet_benchmark_stops_early(self):
        """On a near-noise-free benchmark the CI rule should stop well below
        the observation cap for most selections."""
        benchmark = get_benchmark("lu")
        rng = np.random.default_rng(0)
        test_set = build_test_set(benchmark, size=25, observations=2, rng=rng)
        plan = adaptive_ci_plan(ci_threshold=0.05, max_observations=20)
        learner = ActiveLearner(benchmark, plan=plan, config=SMALL, rng=rng)
        result = learner.run(test_set)
        selections = result.training_examples - SMALL.n_initial
        taken = result.total_observations - SMALL.n_initial * SMALL.seed_observations
        average_per_selection = taken / selections
        assert average_per_selection < 20
        assert average_per_selection >= 2  # the plan always takes at least two

    def test_noisy_benchmark_takes_more_observations(self):
        quiet = get_benchmark("lu")
        noisy = get_benchmark("correlation")
        counts = {}
        for name, benchmark in (("quiet", quiet), ("noisy", noisy)):
            rng = np.random.default_rng(1)
            test_set = build_test_set(benchmark, size=20, observations=2, rng=rng)
            plan = adaptive_ci_plan(ci_threshold=0.01, max_observations=12)
            learner = ActiveLearner(benchmark, plan=plan, config=SMALL, rng=rng)
            result = learner.run(test_set)
            selections = result.training_examples - SMALL.n_initial
            taken = result.total_observations - SMALL.n_initial * SMALL.seed_observations
            counts[name] = taken / selections
        assert counts["noisy"] > counts["quiet"]

    def test_observation_cap_respected(self):
        benchmark = get_benchmark("correlation")
        rng = np.random.default_rng(2)
        test_set = build_test_set(benchmark, size=20, observations=2, rng=rng)
        cap = 6
        plan = adaptive_ci_plan(ci_threshold=0.001, max_observations=cap)
        learner = ActiveLearner(benchmark, plan=plan, config=SMALL, rng=rng)
        result = learner.run(test_set)
        for configuration, count in result.observation_counts.items():
            assert count <= max(cap, SMALL.seed_observations)


class TestNoiseRobustness:
    def test_scaled_benchmark_is_noisier(self):
        base = scaled_benchmark("mm", 1.0)
        loud = scaled_benchmark("mm", 6.0)
        configuration = base.search_space.default_configuration()
        base_obs = base.noise_model.observe_many(
            base.true_runtime(configuration), 300, np.random.default_rng(3)
        )
        loud_obs = loud.noise_model.observe_many(
            loud.true_runtime(configuration), 300, np.random.default_rng(3)
        )
        assert np.var(loud_obs) > np.var(base_obs) * 4

    def test_scaling_preserves_true_runtime(self):
        base = scaled_benchmark("mm", 1.0)
        loud = scaled_benchmark("mm", 4.0)
        configuration = base.search_space.default_configuration()
        assert base.true_runtime(configuration) == pytest.approx(
            loud.true_runtime(configuration)
        )

    def test_invalid_inputs(self):
        with pytest.raises(KeyError):
            scaled_benchmark("nope", 1.0)
        with pytest.raises(ValueError):
            scaled_benchmark("mm", 0.0)

    def test_run_noise_robustness_smoke(self):
        scale = ExperimentScale.smoke(benchmarks=("mm",))
        result = run_noise_robustness(
            scale, benchmark_name="mm", noise_multipliers=(1.0, 3.0)
        )
        assert [level.noise_multiplier for level in result.levels] == [1.0, 3.0]
        for level in result.levels:
            assert level.speedup > 0
            assert level.baseline_cost_seconds > 0
        assert "Noise-injection robustness" in result.render()
