"""Chaos tests of the fault-tolerant measurement pipeline.

Pins the robustness contracts of :mod:`repro.measurement.faults` and the
graceful-degradation path of the sharded runner:

* :class:`FaultPlan` — the ``--inject-faults`` mini-language round-trips
  and rejects malformed specs;
* :class:`FaultInjectingBroker` — faults are deterministic, bounded per
  request, and (crash excepted) fire before the wrapped broker, so a
  faulted attempt consumes nothing from the profiler's noise stream;
* :class:`ResilientBroker` — bounded retries with seeded exponential
  backoff, per-request deadlines, prior-statistics outlier rejection and
  dead-letter records;
* the headline **bit-identity contract**: a learner run under transient
  faults plus retries produces the exact trajectory of a fault-free run —
  in process, under a per-run random chaos seed, and end-to-end through
  ``run_all --paper-run`` with a SIGKILL'd worker and ``--resume``;
* **graceful degradation**: permanently failing units are quarantined
  after ``--max-unit-attempts`` and the run still completes, folding the
  survivors and listing the casualties.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core.evaluation import build_test_set
from repro.core.learner import ActiveLearner, LearnerConfig
from repro.core.plans import sequential_plan
from repro.core.session import TuningSession
from repro.measurement.broker import (
    MeasurementRequest,
    MeasurementResult,
    ProfilerBroker,
)
from repro.measurement.faults import (
    BrokerPolicy,
    CorruptMeasurementError,
    FaultInjectingBroker,
    FaultPlan,
    MeasurementFailedError,
    MeasurementTimeoutError,
    ResilientBroker,
    TransientMeasurementError,
)
from repro.measurement.profiler import Profiler
from repro.measurement.stats import RunningStats
from repro.spapt.suite import get_benchmark

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def _request(prior=None, repetitions=1, configuration=(1, 2, 3)):
    return MeasurementRequest(
        benchmark="mm",
        configuration=configuration,
        repetitions=repetitions,
        prior_stats=prior,
    )


def _prior(values):
    stats = RunningStats()
    for value in values:
        stats.add(value)
    return stats


class StubBroker:
    """Scriptable inner broker: fail N times, then serve a fixed runtime."""

    def __init__(self, runtime=1.0, failures=0, hang=0.0):
        self.runtime = runtime
        self.failures = failures
        self.hang = hang
        self.calls = 0

    def measure(self, request):
        self.calls += 1
        if self.hang:
            time.sleep(self.hang)
        if self.failures > 0:
            self.failures -= 1
            raise TransientMeasurementError("scripted failure")
        return MeasurementResult(
            configuration=request.configuration,
            runtimes=(self.runtime,) * request.repetitions,
        )

    def measure_batch(self, requests):
        return [self.measure(request) for request in requests]


class TestResultBoundary:
    """Satellite pin: MeasurementResult construction is the sanity gate."""

    def test_rejects_nan_runtime(self):
        with pytest.raises(ValueError, match="finite positive"):
            MeasurementResult(configuration=(1,), runtimes=(float("nan"),))

    def test_rejects_infinite_runtime(self):
        with pytest.raises(ValueError, match="finite positive"):
            MeasurementResult(configuration=(1,), runtimes=(float("inf"),))

    def test_rejects_negative_and_zero_runtimes(self):
        with pytest.raises(ValueError, match="finite positive"):
            MeasurementResult(configuration=(1,), runtimes=(-0.5,))
        with pytest.raises(ValueError, match="finite positive"):
            MeasurementResult(configuration=(1,), runtimes=(1.0, 0.0))

    def test_rejects_bad_compile_charges(self):
        with pytest.raises(ValueError, match="compile charge"):
            MeasurementResult(
                configuration=(1,), runtimes=(1.0,), compile_seconds=(-1.0,)
            )
        with pytest.raises(ValueError, match="compile charge"):
            MeasurementResult(
                configuration=(1,),
                runtimes=(1.0,),
                compile_seconds=(float("nan"),),
            )

    def test_accepts_sane_values(self):
        result = MeasurementResult(
            configuration=(1,), runtimes=(0.5, 1.5), compile_seconds=(0.0, 2.0)
        )
        assert result.runtimes == (0.5, 1.5)


class TestFaultPlan:
    def test_parse_and_round_trip(self):
        plan = FaultPlan.parse(
            "seed=7,transient=0.2,timeout=0.1,corrupt=0.05,crash=0.01,"
            "hang=0.02,max-faults=3,fail-units=a+b"
        )
        assert plan.seed == 7
        assert plan.transient_rate == 0.2
        assert plan.timeout_rate == 0.1
        assert plan.corrupt_rate == 0.05
        assert plan.crash_rate == 0.01
        assert plan.hang_seconds == 0.02
        assert plan.max_faults_per_request == 3
        assert plan.fail_units == ("a", "b")
        assert FaultPlan.parse(plan.to_spec()) == plan

    def test_default_plan_round_trips(self):
        assert FaultPlan.parse(FaultPlan().to_spec()) == FaultPlan()

    @pytest.mark.parametrize(
        "spec",
        [
            "transient=1.5",
            "transient=-0.1",
            "transient=0.6,timeout=0.6",
            "bogus=1",
            "transient",
            "hang=-1",
        ],
    )
    def test_rejects_malformed_specs(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    def test_broker_policy_validates_eagerly(self):
        with pytest.raises(ValueError):
            BrokerPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            BrokerPolicy(measure_timeout=0.0)
        with pytest.raises(ValueError):
            BrokerPolicy(inject_faults="bogus=1")
        assert not BrokerPolicy().active
        assert BrokerPolicy(max_retries=2).active


class TestFaultInjectingBroker:
    def test_fault_schedule_is_deterministic(self):
        plan = FaultPlan(seed=11, transient_rate=0.3, timeout_rate=0.2,
                         corrupt_rate=0.2, max_faults_per_request=1)

        def outcomes():
            broker = FaultInjectingBroker(StubBroker(), plan,
                                          sleep=lambda s: None)
            seen = []
            for i in range(40):
                request = _request(configuration=(i,))
                try:
                    broker.measure(request)
                    seen.append("ok")
                except TransientMeasurementError as exc:
                    seen.append(type(exc).__name__)
            return seen, dict(broker.injected)

        first, first_counts = outcomes()
        second, second_counts = outcomes()
        assert first == second
        assert first_counts == second_counts
        assert sum(first_counts.values()) > 0

    def test_faults_fire_before_the_inner_broker(self):
        stub = StubBroker()
        plan = FaultPlan(transient_rate=1.0, max_faults_per_request=2)
        broker = FaultInjectingBroker(stub, plan)
        request = _request()
        for _ in range(2):
            with pytest.raises(TransientMeasurementError):
                broker.measure(request)
        assert stub.calls == 0  # faulted attempts consumed nothing
        result = broker.measure(request)  # per-request budget exhausted
        assert result.runtimes == (1.0,)
        assert stub.calls == 1
        assert broker.injected == {"transient": 2}

    def test_crash_fault_measures_then_loses_the_result(self):
        stub = StubBroker()
        plan = FaultPlan(crash_rate=1.0, max_faults_per_request=1)
        broker = FaultInjectingBroker(stub, plan)
        with pytest.raises(TransientMeasurementError):
            broker.measure(_request())
        assert stub.calls == 1  # the crash consumed a real measurement
        broker.measure(_request())
        assert stub.calls == 2

    def test_fail_units_are_permanent(self):
        stub = StubBroker()
        plan = FaultPlan(fail_units=("r001",))
        broker = FaultInjectingBroker(stub, plan,
                                      unit="table1--mm--plan--r001")
        for _ in range(10):
            with pytest.raises(TransientMeasurementError):
                broker.measure(_request())
        assert stub.calls == 0
        unaffected = FaultInjectingBroker(StubBroker(), plan,
                                          unit="table1--mm--plan--r000")
        assert unaffected.measure(_request()).runtimes == (1.0,)

    def test_corrupt_without_prior_is_rejected_at_the_boundary(self):
        plan = FaultPlan(corrupt_rate=1.0, max_faults_per_request=1)
        broker = FaultInjectingBroker(StubBroker(), plan)
        with pytest.raises(CorruptMeasurementError):
            broker.measure(_request(prior=None))

    def test_corrupt_with_prior_can_fabricate_detectable_outliers(self):
        prior = _prior([1.0, 1.1, 0.9])
        fabricated = []
        for seed in range(30):
            plan = FaultPlan(seed=seed, corrupt_rate=1.0,
                             max_faults_per_request=1)
            broker = FaultInjectingBroker(StubBroker(), plan)
            try:
                result = broker.measure(_request(prior=prior))
            except CorruptMeasurementError:
                continue
            fabricated.append(result)
        assert fabricated  # some seeds choose the outlier mode
        for result in fabricated:
            # Every fabricated outlier is far outside the resilient
            # wrapper's 20x rejection band — always detectable downstream.
            assert all(r > prior.mean * 20 for r in result.runtimes)


class TestResilientBroker:
    def test_retries_until_success_with_bounded_backoff(self):
        stub = StubBroker(failures=2)
        delays = []
        broker = ResilientBroker(
            stub,
            max_retries=3,
            backoff_base=0.1,
            backoff_factor=2.0,
            backoff_max=0.5,
            backoff_jitter=0.25,
            sleep=delays.append,
        )
        result = broker.measure(_request())
        assert result.runtimes == (1.0,)
        assert stub.calls == 3
        assert broker.retries == 2
        assert len(delays) == 2
        for attempt, delay in enumerate(delays):
            base = min(0.1 * 2.0 ** attempt, 0.5)
            assert base <= delay <= base * 1.25

    def test_backoff_schedule_is_seeded(self):
        def delays(seed):
            stub = StubBroker(failures=3)
            recorded = []
            broker = ResilientBroker(stub, max_retries=3, seed=seed,
                                     sleep=recorded.append)
            broker.measure(_request())
            return recorded

        assert delays(5) == delays(5)
        assert delays(5) != delays(6)

    def test_exhausted_retries_dead_letter(self, tmp_path):
        dead_path = tmp_path / "dead-letters.jsonl"
        stub = StubBroker(failures=100)
        broker = ResilientBroker(
            stub,
            max_retries=2,
            sleep=lambda s: None,
            dead_letter_path=dead_path,
            unit="table1--mm--plan--r000",
        )
        with pytest.raises(MeasurementFailedError) as excinfo:
            broker.measure(_request())
        assert stub.calls == 3  # 1 + max_retries
        record = excinfo.value.dead_letter
        assert record["unit"] == "table1--mm--plan--r000"
        assert record["benchmark"] == "mm"
        assert len(record["attempts"]) == 3
        assert broker.dead_letters == [record]
        lines = dead_path.read_text("utf-8").splitlines()
        assert [json.loads(line) for line in lines] == [record]

    def test_deadline_times_out_a_hanging_measurement(self):
        stub = StubBroker(hang=0.5)
        broker = ResilientBroker(stub, max_retries=1, timeout=0.05,
                                 sleep=lambda s: None)
        with pytest.raises(MeasurementFailedError) as excinfo:
            broker.measure(_request())
        assert broker.timeouts == 2
        assert any(
            "MeasurementTimeoutError" in attempt
            for attempt in excinfo.value.dead_letter["attempts"]
        )

    def test_deadline_passes_a_fast_measurement(self):
        broker = ResilientBroker(StubBroker(), timeout=30.0)
        assert broker.measure(_request()).runtimes == (1.0,)
        assert broker.timeouts == 0

    def test_injected_timeout_is_retried(self):
        plan = FaultPlan(seed=3, timeout_rate=1.0, hang_seconds=0.0,
                         max_faults_per_request=1)
        stub = StubBroker()
        chain = ResilientBroker(
            FaultInjectingBroker(stub, plan), max_retries=2,
            sleep=lambda s: None,
        )
        with pytest.raises(MeasurementTimeoutError):
            FaultInjectingBroker(StubBroker(), plan).measure(_request())
        assert chain.measure(_request()).runtimes == (1.0,)
        assert chain.retries == 1
        assert stub.calls == 1

    def test_outlier_rejected_against_prior_statistics(self):
        prior = _prior([1.0, 1.1, 0.9])
        broker = ResilientBroker(StubBroker(runtime=100.0), max_retries=1,
                                 sleep=lambda s: None)
        with pytest.raises(MeasurementFailedError):
            broker.measure(_request(prior=prior))
        assert broker.rejections == 2
        sane = ResilientBroker(StubBroker(runtime=1.2))
        assert sane.measure(_request(prior=prior)).runtimes == (1.2,)
        assert sane.rejections == 0

    def test_no_prior_means_no_outlier_check(self):
        broker = ResilientBroker(StubBroker(runtime=100.0))
        assert broker.measure(_request(prior=None)).runtimes == (100.0,)


class TestSessionAbandon:
    def _session(self, seed=2017):
        benchmark = get_benchmark("mm")
        config = LearnerConfig(
            n_initial=4,
            seed_observations=2,
            n_candidates=8,
            max_training_examples=10,
            reference_size=6,
            evaluation_interval=5,
            tree_particles=6,
        )
        test_set = build_test_set(
            benchmark, size=12, observations=2,
            rng=np.random.default_rng(seed + 1),
        )
        session = TuningSession(
            benchmark,
            plan=sequential_plan(),
            config=config,
            rng=np.random.default_rng(seed),
            test_set=test_set,
        )
        return session, ProfilerBroker(Profiler(benchmark, rng=session.rng))

    def test_abandon_makes_the_session_re_askable(self):
        session, broker = self._session()
        request = session.ask()
        assert request is not None
        with pytest.raises(RuntimeError, match="outstanding"):
            session.ask()  # a pending request blocks further asks...
        session.abandon()
        request = session.ask()  # ...abandoning clears it
        assert request is not None
        # The session is uncorrupted: drive it to a clean completion.
        session.tell(broker.measure(request))
        while (request := session.ask()) is not None:
            session.tell(broker.measure(request))
        result = session.result()
        assert result.curve.points

    def test_abandon_drops_a_partially_measured_batch(self):
        session, broker = self._session()
        requests = session.ask(2)
        assert len(requests) == 2
        session.tell(broker.measure(requests[0]))
        session.abandon()
        assert session.pending_requests == []
        ledger_total = session.ledger.total_seconds
        requests = session.ask(2)
        assert requests
        # The parked partial result was dropped, not folded.
        assert session.ledger.total_seconds == ledger_total


class _CapturedChain:
    """Broker factory capturing the wrappers for post-run assertions."""

    def __init__(self, plan, max_retries=4):
        self.plan = plan
        self.max_retries = max_retries
        self.injector = None
        self.resilient = None

    def __call__(self, base, rng):
        self.injector = FaultInjectingBroker(base, self.plan,
                                             sleep=lambda s: None)
        self.resilient = ResilientBroker(
            self.injector, max_retries=self.max_retries,
            sleep=lambda s: None,
        )
        return self.resilient


class TestBitIdentity:
    """Transient faults plus retries are invisible to the learner."""

    def _run(self, broker_factory=None, seed=2017):
        benchmark = get_benchmark("mm")
        config = LearnerConfig(
            n_initial=4,
            seed_observations=4,
            n_candidates=12,
            max_training_examples=20,
            reference_size=8,
            evaluation_interval=5,
            tree_particles=6,
        )
        test_set = build_test_set(
            benchmark, size=30, observations=3,
            rng=np.random.default_rng(seed + 1),
        )
        learner = ActiveLearner(
            benchmark,
            plan=sequential_plan(),
            config=config,
            rng=np.random.default_rng(seed),
        )
        return learner.run(test_set, broker_factory=broker_factory)

    def _assert_identical(self, baseline, chaotic):
        assert len(baseline.curve.points) == len(chaotic.curve.points)
        for expected, actual in zip(baseline.curve.points,
                                    chaotic.curve.points):
            assert expected.cost_seconds == actual.cost_seconds
            assert expected.rmse == actual.rmse
        assert baseline.ledger.total_seconds == chaotic.ledger.total_seconds
        assert baseline.observation_counts == chaotic.observation_counts

    def test_transient_faults_are_invisible(self):
        baseline = self._run()
        chain = _CapturedChain(
            FaultPlan(seed=13, transient_rate=0.2, timeout_rate=0.15,
                      corrupt_rate=0.15, hang_seconds=0.0,
                      max_faults_per_request=2)
        )
        chaotic = self._run(broker_factory=chain)
        assert sum(chain.injector.injected.values()) > 0
        assert chain.resilient.retries > 0
        self._assert_identical(baseline, chaotic)

    def test_bit_identity_holds_for_a_random_chaos_seed(self, chaos_seed):
        """The per-run property: ANY fault schedule of transient faults
        must be invisible (the seed is echoed in the pytest header)."""
        baseline = self._run()
        chain = _CapturedChain(
            FaultPlan(seed=chaos_seed, transient_rate=0.25,
                      timeout_rate=0.15, corrupt_rate=0.15,
                      hang_seconds=0.0, max_faults_per_request=2)
        )
        chaotic = self._run(broker_factory=chain)
        self._assert_identical(baseline, chaotic)


def _run_all_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _run_all_command(run_dir, report, extra=(), resume=False,
                     repetitions="1"):
    argv = [
        sys.executable,
        "-m",
        "repro.experiments.run_all",
        "--paper-run",
        "--scale",
        "smoke",
        "--only",
        "table1",
        "--repetitions",
        repetitions,
        "--checkpoint-interval",
        "3",
        "--run-dir",
        str(run_dir),
        "--output",
        str(report),
        *extra,
    ]
    if resume:
        argv.append("--resume")
    return argv


def _report_body(path):
    # Drop the header section, which names the run directory.
    return path.read_text("utf-8").split("\n\n", 1)[1]


_CHAOS_FLAGS = (
    "--max-retries",
    "5",
    "--measure-timeout",
    "30",
    "--inject-faults",
    "seed=7,transient=0.2,timeout=0.1,corrupt=0.1,hang=0.005,max-faults=2",
)


class TestChaosEndToEnd:
    """The acceptance pins: smoke-scale ``run_all --paper-run`` chaos."""

    def test_chaos_run_with_kill_is_bit_identical(self, tmp_path):
        """Transient faults + retries + one SIGKILL'd worker + --resume
        produce a report byte-identical to a clean, fault-free run."""
        env = _run_all_env()
        clean_report = tmp_path / "clean.txt"
        subprocess.run(
            _run_all_command(tmp_path / "clean", clean_report),
            env=env,
            cwd=REPO_ROOT,
            check=True,
            capture_output=True,
            timeout=600,
        )

        chaos_dir = tmp_path / "chaos"
        chaos_report = tmp_path / "chaos.txt"
        process = subprocess.Popen(
            _run_all_command(chaos_dir, chaos_report, extra=_CHAOS_FLAGS),
            env=env,
            cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        results_dir = chaos_dir / "results"
        checkpoints_dir = chaos_dir / "checkpoints"
        deadline = time.monotonic() + 300
        try:
            # Kill once demonstrably mid-flight: a published unit or an
            # in-flight checkpoint exists.
            while time.monotonic() < deadline:
                if process.poll() is not None:
                    pytest.fail("chaos run finished before it could be killed")
                published = (
                    len(list(results_dir.glob("*.pkl")))
                    if results_dir.is_dir()
                    else 0
                )
                checkpointed = (
                    len(list(checkpoints_dir.glob("*.pkl")))
                    if checkpoints_dir.is_dir()
                    else 0
                )
                if published >= 1 or checkpointed >= 1:
                    break
                time.sleep(0.05)
            process.send_signal(signal.SIGKILL)
        finally:
            process.wait(timeout=60)

        resumed = subprocess.run(
            _run_all_command(chaos_dir, chaos_report, extra=_CHAOS_FLAGS,
                             resume=True),
            env=env,
            cwd=REPO_ROOT,
            check=True,
            capture_output=True,
            timeout=600,
        )
        assert chaos_report.exists(), resumed.stderr.decode()
        assert _report_body(chaos_report) == _report_body(clean_report)

    def test_permanent_faults_quarantine_and_degrade_gracefully(
        self, tmp_path
    ):
        """Units whose every measurement fails are quarantined after
        --max-unit-attempts and the run completes with a partial report
        enumerating them."""
        env = _run_all_env()
        run_dir = tmp_path / "quarantine"
        report = tmp_path / "quarantine.txt"
        completed = subprocess.run(
            _run_all_command(
                run_dir,
                report,
                repetitions="2",
                extra=(
                    "--max-retries",
                    "1",
                    "--max-unit-attempts",
                    "2",
                    "--inject-faults",
                    "fail-units=r001",
                ),
            ),
            env=env,
            cwd=REPO_ROOT,
            check=True,
            capture_output=True,
            timeout=600,
        )
        text = report.read_text("utf-8")
        assert "PARTIAL RESULT" in text, completed.stderr.decode()
        assert "Quarantined units" in text

        failures = sorted((run_dir / "failed").glob("*.json"))
        quarantined = [
            json.loads(path.read_text("utf-8"))
            for path in failures
            if path.name != "dead-letters.jsonl"
        ]
        assert quarantined
        for record in quarantined:
            assert "r001" in record["unit"]
            assert record["quarantined"] is True
            assert len(record["attempts"]) == 2
            assert record["attempts"][-1]["error"]
        # Every permanently failed request left a dead-letter record.
        dead_path = run_dir / "failed" / "dead-letters.jsonl"
        assert dead_path.exists()
        assert any(
            json.loads(line)["unit"] and "r001" in json.loads(line)["unit"]
            for line in dead_path.read_text("utf-8").splitlines()
        )
