"""Equivalence tests: flat-array tree kernel vs the per-node reference path.

The vectorized ``predict``/``expected_average_variance`` rewrite is only
safe if it is numerically indistinguishable from the per-node reference
implementation it replaced — the particle moves are *sampled* from scores,
so even tiny drift changes trajectories.  These tests grow real particle
trees on random data and assert (a) routing identity, (b) prediction/ALC
agreement to 1e-10, (c) that the stay-move patching keeps stale caches
honest, and (d) that a seeded ``ActiveLearner`` run produces the same
learning curve in vectorized and reference modes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.evaluation import build_test_set
from repro.core.learner import ActiveLearner, LearnerConfig
from repro.models.dynamic_tree import DynamicTreeConfig, DynamicTreeRegressor
from repro.models.flat_tree import FlatForest, FlatTree
from repro.spapt.suite import get_benchmark


def _grown_model(seed: int, n: int = 150, dims: int = 4, particles: int = 25):
    """A dynamic tree trained on random piecewise data (trees really grow)."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(-2, 2, size=(n, dims))
    y = (
        np.where(X[:, 0] > 0.3, 2.0, -1.0)
        + 0.4 * X[:, 1]
        + rng.normal(0, 0.05, size=n)
    )
    model = DynamicTreeRegressor(
        DynamicTreeConfig(n_particles=particles), rng=np.random.default_rng(seed + 1)
    )
    model.fit(X, y)
    assert max(model.leaf_counts()) > 1, "test needs non-trivial trees"
    return model, rng


class TestFlatTreeRouting:
    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_route_matches_descend(self, seed):
        model, rng = _grown_model(seed)
        X = rng.uniform(-2.5, 2.5, size=(80, 4))
        for root in model._particles:
            flat = FlatTree.compile(root)
            leaves = root.leaves()
            leaf_ids = flat.route(X)
            assert leaf_ids.shape == (80,)
            for i in range(X.shape[0]):
                expected = leaves.index(root.descend(X[i]))
                assert leaf_ids[i] == expected

    def test_route_one_matches_route(self):
        model, rng = _grown_model(3)
        x = rng.uniform(-2, 2, size=4)
        for root in model._particles:
            flat = FlatTree.compile(root)
            assert flat.route_one(x) == flat.route(x[None, :])[0]

    def test_leaf_ids_are_preorder_stable(self):
        model, _ = _grown_model(5)
        root = model._particles[0]
        flat = FlatTree.compile(root)
        # Leaf ids enumerate root.leaves() (left-to-right pre-order) exactly.
        for leaf_id, leaf in enumerate(root.leaves()):
            assert flat.leaf_mean[leaf_id] == leaf.leaf.predictive_mean()
            assert flat.leaf_count[leaf_id] == leaf.leaf.count

    def test_forest_route_matches_per_tree_route(self):
        model, rng = _grown_model(9)
        X = rng.uniform(-2, 2, size=(30, 4))
        trees = [FlatTree.compile(root) for root in model._particles]
        forest = FlatForest.from_trees(trees)
        forest_ids = forest.route(X)
        assert forest_ids.shape == (len(trees), 30)
        for p, tree in enumerate(trees):
            local = tree.route(X)
            np.testing.assert_array_equal(
                forest_ids[p] - forest.leaf_offsets[p], local
            )

    def test_forest_route_one_matches_per_tree_route_one(self):
        """The one-row-many-trees kernel agrees with per-tree scalar descents."""
        model, rng = _grown_model(13)
        trees = [FlatTree.compile(root) for root in model._particles]
        forest = FlatForest.from_trees(trees)
        for _ in range(10):
            x = rng.uniform(-2.5, 2.5, size=4)
            global_ids = forest.route_one(x)
            assert global_ids.shape == (len(trees),)
            for p, tree in enumerate(trees):
                assert global_ids[p] - forest.leaf_offsets[p] == tree.route_one(x)

    def test_single_leaf_tree(self):
        model = DynamicTreeRegressor(
            DynamicTreeConfig(n_particles=3), rng=np.random.default_rng(0)
        )
        model.fit(np.zeros((1, 2)), np.ones(1))
        root = model._particles[0]
        flat = FlatTree.compile(root)
        assert flat.n_leaves == 1
        assert np.all(flat.route(np.random.default_rng(1).normal(size=(10, 2))) == 0)


class TestVectorizedEquivalence:
    @pytest.mark.parametrize("seed", [0, 11, 99])
    def test_predict_matches_reference(self, seed):
        model, rng = _grown_model(seed)
        X = rng.uniform(-2.5, 2.5, size=(60, 4))
        fast = model.predict(X)
        slow = model.predict_reference(X)
        np.testing.assert_allclose(fast.mean, slow.mean, rtol=0, atol=1e-10)
        np.testing.assert_allclose(fast.variance, slow.variance, rtol=0, atol=1e-10)

    @pytest.mark.parametrize("seed", [0, 11, 99])
    def test_alc_matches_reference(self, seed):
        model, rng = _grown_model(seed)
        candidates = rng.uniform(-2, 2, size=(40, 4))
        reference = rng.uniform(-2, 2, size=(25, 4))
        fast = model.expected_average_variance(candidates, reference)
        slow = model.expected_average_variance_reference(candidates, reference)
        np.testing.assert_allclose(fast, slow, rtol=1e-10)

    def test_caches_survive_updates(self):
        """Interleaved predicts and updates: patched/recompiled caches never
        drift from the reference path (stay moves patch, grow/prune moves
        recompile)."""
        model, rng = _grown_model(21, n=60)
        for step in range(40):
            x = rng.uniform(-2, 2, size=4)
            y = float(np.where(x[0] > 0.3, 2.0, -1.0) + 0.4 * x[1])
            model.update(x, y)
            if step % 5 == 0:
                probe = rng.uniform(-2, 2, size=(12, 4))
                fast = model.predict(probe)
                slow = model.predict_reference(probe)
                np.testing.assert_allclose(fast.mean, slow.mean, atol=1e-10)
                np.testing.assert_allclose(fast.variance, slow.variance, atol=1e-10)

    def test_vectorized_flag_selects_reference_path(self):
        rng = np.random.default_rng(4)
        X = rng.uniform(-1, 1, size=(40, 3))
        y = X[:, 0] + rng.normal(0, 0.1, 40)
        reference_model = DynamicTreeRegressor(
            DynamicTreeConfig(n_particles=10, vectorized=False),
            rng=np.random.default_rng(8),
        )
        reference_model.fit(X, y)
        prediction = reference_model.predict(X[:5])
        assert prediction.mean.shape == (5,)


class TestLearnerDeterminism:
    CONFIG = LearnerConfig(
        n_initial=4,
        seed_observations=5,
        n_candidates=15,
        max_training_examples=30,
        reference_size=10,
        evaluation_interval=8,
        tree_particles=8,
    )

    def _curve(self, vectorized: bool):
        benchmark = get_benchmark("mm")
        test_set = build_test_set(
            benchmark, size=30, observations=3, rng=np.random.default_rng(77)
        )

        def factory(rng):
            return DynamicTreeRegressor(
                DynamicTreeConfig(
                    n_particles=self.CONFIG.tree_particles, vectorized=vectorized
                ),
                rng=rng,
            )

        learner = ActiveLearner(
            benchmark,
            config=self.CONFIG,
            model_factory=factory,
            rng=np.random.default_rng(123),
        )
        result = learner.run(test_set)
        return [
            (p.training_examples, p.cost_seconds, p.rmse) for p in result.curve.points
        ]

    def test_seeded_run_is_reproducible(self):
        assert self._curve(vectorized=True) == self._curve(vectorized=True)

    def test_vectorized_and_reference_runs_agree(self):
        """The whole learning trajectory — selections, costs, RMSE curve —
        is identical whichever kernel serves predict/ALC."""
        assert self._curve(vectorized=True) == self._curve(vectorized=False)
