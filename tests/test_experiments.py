"""Tests for the experiment harness (tables, figures, reporting)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import ExperimentScale
from repro.experiments.figure1 import run_figure1
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure5 import figure5_from_table1, run_figure5
from repro.experiments.figure6 import PAPER_FIGURE6_BENCHMARKS, run_figure6
from repro.experiments.reporting import format_scientific, format_table, to_csv
from repro.experiments.table1 import PAPER_TABLE1_SPEEDUPS, run_table1
from repro.experiments.table2 import run_table2


SCALE = ExperimentScale.smoke(benchmarks=("mm",))


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_scientific(self):
        assert format_scientific(3.78e14) == "3.78e+14"

    def test_to_csv(self):
        text = to_csv(["a", "b"], [[1, 2], [3, 4]])
        assert text.splitlines()[0] == "a,b"
        assert text.splitlines()[2] == "3,4"


class TestExperimentScale:
    def test_three_scales_exist(self):
        assert ExperimentScale.smoke().name == "smoke"
        assert ExperimentScale.laptop().name == "laptop"
        assert ExperimentScale.paper().name == "paper"

    def test_laptop_covers_all_benchmarks(self):
        assert len(ExperimentScale.laptop().benchmarks) == 11

    def test_paper_scale_parameters(self):
        paper = ExperimentScale.paper()
        assert paper.dataset_configurations == 10_000
        assert paper.test_size == 2500
        assert paper.repetitions == 10
        assert paper.learner.max_training_examples == 2500

    def test_comparison_config_propagates(self):
        scale = ExperimentScale.smoke()
        config = scale.comparison_config()
        assert config.repetitions == scale.repetitions
        assert config.test_size == scale.test_size


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table1(SCALE)

    def test_rows_per_benchmark(self, result):
        assert [row.benchmark for row in result.rows] == ["mm"]
        row = result.rows[0]
        assert row.speedup > 0
        assert row.baseline_cost_seconds > 0
        assert row.our_cost_seconds > 0
        assert row.lowest_common_rmse > 0

    def test_speedup_consistency(self, result):
        row = result.rows[0]
        assert row.speedup == pytest.approx(
            row.baseline_cost_seconds / row.our_cost_seconds
        )

    def test_speedup_factor_reported(self, result):
        """Every row carries the multi-level AUC-ratio speed-up and the
        rendered table exposes it next to the single-level metric."""
        assert result.rows[0].speedup_factor > 0
        assert result.geometric_mean_speedup_factor > 0
        assert "speed-up factor" in result.render()

    def test_geometric_mean(self, result):
        assert result.geometric_mean_speedup == pytest.approx(result.rows[0].speedup)

    def test_paper_reference_numbers(self, result):
        assert result.rows[0].paper_speedup == PAPER_TABLE1_SPEEDUPS["mm"]
        assert result.paper_geometric_mean_speedup == pytest.approx(1.11, abs=0.01)

    def test_render_contains_headline_columns(self, result):
        text = result.render()
        assert "lowest common RMSE" in text
        assert "geometric mean" in text
        assert "mm" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table2(SCALE)

    def test_row_fields_ordered(self, result):
        row = result.rows[0]
        assert row.variance_min <= row.variance_mean <= row.variance_max
        assert row.ci35_min <= row.ci35_mean <= row.ci35_max
        assert row.ci5_min <= row.ci5_mean <= row.ci5_max

    def test_smaller_samples_have_wider_intervals(self, result):
        row = result.rows[0]
        assert row.ci5_mean >= row.ci35_mean

    def test_render(self, result):
        assert "Table 2" in result.render()

    def test_noisy_benchmark_has_larger_variance(self):
        result = run_table2(ExperimentScale.smoke(benchmarks=("mvt", "correlation")))
        by_name = {row.benchmark: row for row in result.rows}
        assert (
            by_name["correlation"].variance_mean > by_name["mvt"].variance_mean * 10
        )


class TestFigure1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure1(ExperimentScale.smoke(benchmarks=("mm",)))

    def test_grid_is_square(self, result):
        grid = result.grid("single_sample_mae")
        assert grid.shape[0] == grid.shape[1]
        assert np.all(grid >= 0)

    def test_optimal_plan_uses_fewer_runs(self, result):
        assert result.total_optimal_runs < result.total_fixed_plan_runs
        assert result.total_optimal_runs >= len(result.cells)

    def test_sample_counts_bounded(self, result):
        samples = result.grid("optimal_samples")
        assert samples.min() >= 1
        assert samples.max() <= result.observations_per_point

    def test_render(self, result):
        assert "Figure 1 summary" in result.render()

    def test_requires_mm_like_parameters(self):
        from repro.spapt.suite import get_benchmark

        with pytest.raises(ValueError):
            run_figure1(SCALE, benchmark=get_benchmark("adi"))


class TestFigure2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure2(ExperimentScale.smoke(benchmarks=("adi",)))

    def test_sweep_covers_unroll_factors(self, result):
        factors = [p.unroll_factor for p in result.points]
        assert factors == sorted(factors)
        assert factors[0] == 1
        assert factors[-1] >= 28

    def test_plateau_climb_shape(self, result):
        assert result.high_plateau > result.low_plateau

    def test_render(self, result):
        assert "Figure 2" in result.render()

    def test_unknown_parameter_raises(self):
        with pytest.raises(ValueError):
            run_figure2(SCALE, loop_parameter="U_missing")


class TestFigure5And6:
    def test_figure5_from_table1(self):
        table1 = run_table1(SCALE)
        figure5 = figure5_from_table1(table1)
        assert len(figure5.bars) == len(table1.rows)
        assert figure5.geometric_mean_speedup == pytest.approx(
            table1.geometric_mean_speedup
        )
        assert "Figure 5" in figure5.render()

    def test_figure6_panels(self):
        result = run_figure6(SCALE, benchmarks=["mm"])
        assert set(result.panels) == {"mm"}
        panel = result.panels["mm"]
        series = panel.series("variable observations")
        assert len(series) >= 2
        assert all(cost >= 0 and rmse >= 0 for cost, rmse in series)
        assert "Figure 6 panel" in result.render()

    def test_figure6_default_benchmarks_are_the_papers(self):
        assert PAPER_FIGURE6_BENCHMARKS == (
            "adi",
            "atax",
            "correlation",
            "gemver",
            "jacobi",
            "mvt",
        )


class TestPaperScaleSmoke:
    def test_smoke_runner_completes_end_to_end(self):
        """The paper-scale entry point runs Algorithm 1 end to end.

        Scaled down (50 particles, 12 examples) so the test is fast; the
        real 5000-particle configuration is exercised by
        ``run_all --paper-scale-smoke`` / ``repro.experiments.paper_scale``.
        """
        from repro.experiments.paper_scale import run_paper_scale_smoke

        result = run_paper_scale_smoke(
            benchmark="mm",
            training_examples=12,
            particles=50,
            candidates=25,
            test_size=40,
        )
        assert result.particles == 50
        assert result.training_examples == 12
        assert result.final_rmse > 0
        assert result.wall_seconds > 0
        rendered = result.render()
        assert "Paper-scale smoke run" in rendered
        assert "training examples    : 12" in rendered

    def test_paper_scale_defaults_match_the_paper(self):
        """Without overrides the smoke uses the paper's model settings."""
        import dataclasses

        from repro.core.learner import LearnerConfig

        config = LearnerConfig.paper_scale()
        config = dataclasses.replace(config, max_training_examples=40)
        assert config.tree_particles == 5000
        assert config.n_candidates == 500

    def test_run_all_flag_dispatches_to_smoke(self, capsys, monkeypatch):
        import importlib

        run_all_module = importlib.import_module("repro.experiments.run_all")
        from repro.experiments.paper_scale import PaperScaleSmokeResult

        calls = {}

        def fake_smoke(benchmark, training_examples):
            calls["benchmark"] = benchmark
            calls["examples"] = training_examples
            return PaperScaleSmokeResult(
                benchmark=benchmark,
                particles=5000,
                candidates=500,
                training_examples=training_examples,
                wall_seconds=1.0,
                seconds_per_example=0.1,
                final_rmse=0.5,
                best_rmse=0.4,
                simulated_cost_seconds=10.0,
            )

        monkeypatch.setattr(run_all_module, "run_paper_scale_smoke", fake_smoke)
        assert (
            run_all_module.main(
                ["--paper-scale-smoke", "--smoke-benchmark", "adi", "--smoke-examples", "17"]
            )
            == 0
        )
        assert calls == {"benchmark": "adi", "examples": 17}
        assert "Paper-scale smoke run" in capsys.readouterr().out


class TestCheckRegressionGate:
    """The BENCH_model.json perf gate (benchmarks/check_regression.py)."""

    @pytest.fixture()
    def gate(self):
        import importlib.util
        import pathlib

        path = (
            pathlib.Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "check_regression.py"
        )
        spec = importlib.util.spec_from_file_location("check_regression", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    @staticmethod
    def _payload(**means):
        return {
            "benchmarks": [
                {
                    "name": name,
                    "group": "model-update" if "update" in name else "predict-alc",
                    "stats": {"mean": mean},
                }
                for name, mean in means.items()
            ]
        }

    def test_passes_when_within_threshold(self, gate):
        baseline = self._payload(update_bench=1.0, alc_bench=0.5)
        current = self._payload(update_bench=1.1, alc_bench=0.45)
        regressions, notes = gate.compare(baseline, current)
        assert regressions == []
        assert any("IMPROVED" in line for line in notes)

    def test_fails_on_regression_beyond_threshold(self, gate):
        baseline = self._payload(update_bench=1.0)
        current = self._payload(update_bench=1.3)
        regressions, _ = gate.compare(baseline, current)
        assert len(regressions) == 1
        assert "update_bench" in regressions[0]

    def test_new_and_retired_benchmarks_never_fail(self, gate):
        baseline = self._payload(old_update_bench=1.0)
        current = self._payload(new_update_bench=2.0)
        regressions, notes = gate.compare(baseline, current)
        assert regressions == []
        assert any("NEW" in line for line in notes)
        assert any("RETIRED" in line for line in notes)

    def test_only_gated_groups_are_compared(self, gate):
        baseline = {
            "benchmarks": [
                {"name": "figure_bench", "group": "figure1", "stats": {"mean": 1.0}}
            ]
        }
        current = {
            "benchmarks": [
                {"name": "figure_bench", "group": "figure1", "stats": {"mean": 9.0}}
            ]
        }
        regressions, notes = gate.compare(baseline, current)
        assert regressions == []
        assert notes == []

    def test_gate_against_committed_baseline(self, gate):
        """The real invocation path: current BENCH_model.json vs git HEAD."""
        current = gate.BENCH_JSON
        if not current.is_file():
            pytest.skip("no BENCH_model.json in the working tree")
        baseline = gate._load_baseline("HEAD")
        if baseline is None:
            pytest.skip("no committed BENCH_model.json at HEAD")
        payload = __import__("json").loads(current.read_text("utf-8"))
        regressions, _ = gate.compare(baseline, payload, threshold=1e9)
        assert regressions == []
