"""Equivalence tests for the batched SMC update kernel.

The batched update path (reweight via cached log-pdf terms, copy-on-write
systematic resample, three-phase propagate) must replay the per-particle
reference implementation *bit for bit*: particle moves are sampled from
scores and the resample decision from weights, so a single differing bit —
or a single extra RNG draw — forks every seeded trajectory that follows.
These tests drive long seeded trajectories through both paths (exercising
stay, grow, prune and resample events), check the copy-on-write sharing
invariants directly, replay the RNG frontend against ``Generator``, and pin
the fixed systematic resampler's behaviour on adversarial weight vectors.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.models.dynamic_tree import DynamicTreeConfig, DynamicTreeRegressor
from repro.models.leaf import (
    GaussianLeafModel,
    LeafCacheArrays,
    LMLCache,
    NIGPrior,
    log_marginal_likelihood_from_stats,
)
from repro.models.rng_replay import GeneratorDraws, ReplayDraws


def _piecewise_data(n, dims, seed, noise=0.3):
    """Noisy piecewise targets: trees grow, and the noise forces prunes and
    weight degeneracy (hence resamples)."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(-2, 2, size=(n, dims))
    y = (
        np.where(X[:, 0] > 0.3, 2.0, -1.0)
        + 0.4 * X[:, 1]
        + rng.normal(0, noise, size=n)
    )
    return X, y


def _paired_models(seed, particles=20, resample_threshold=0.9, backend="numpy"):
    """The same seeded model in batched and reference configuration."""
    batched = DynamicTreeRegressor(
        DynamicTreeConfig(
            n_particles=particles,
            resample_threshold=resample_threshold,
            vectorized=True,
            backend=backend,
        ),
        rng=np.random.default_rng(seed),
    )
    reference = DynamicTreeRegressor(
        DynamicTreeConfig(
            n_particles=particles,
            resample_threshold=resample_threshold,
            vectorized=False,
        ),
        rng=np.random.default_rng(seed),
    )
    return batched, reference


class TestTrajectoryBitIdentity:
    @pytest.mark.parametrize("backend", ["numpy", "numba"])
    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_update_trajectory_matches_reference_bitwise(self, seed, backend):
        """Seeded fit + update trajectories agree to the last bit.

        Predictions, ALC scores and tree shapes are compared after every
        observation; the workload is chosen so that stay, grow, prune and
        resample events all occur (asserted below — a trajectory that never
        prunes or resamples would not prove much).  ``backend="numba"`` runs
        the compiled dispatch path — the njit kernels where numba is
        installed, the NumPy fallback otherwise; both are contractually
        bit-identical to the ``vectorized=False`` reference.
        """
        X, y = _piecewise_data(130, 4, seed)
        batched, reference = _paired_models(seed + 1, backend=backend)

        prunes = 0
        original_prune = DynamicTreeRegressor._apply_prune

        def counting_prune(self, *args, **kwargs):
            nonlocal prunes
            prunes += 1
            return original_prune(self, *args, **kwargs)

        resamples = 0
        original_systematic = DynamicTreeRegressor._systematic_indices

        def counting_systematic(self, *args, **kwargs):
            nonlocal resamples
            resamples += 1
            return original_systematic(self, *args, **kwargs)

        DynamicTreeRegressor._apply_prune = counting_prune
        DynamicTreeRegressor._systematic_indices = counting_systematic
        try:
            batched.fit(X[:50], y[:50])
            reference.fit(X[:50], y[:50])
            probes = np.random.default_rng(seed + 2).uniform(-2, 2, size=(9, 4))
            for i in range(50, 130):
                batched.update(X[i], float(y[i]))
                reference.update(X[i], float(y[i]))
                fast = batched.predict(probes)
                slow = reference.predict(probes)
                assert fast.mean.tolist() == slow.mean.tolist(), f"step {i}"
                assert fast.variance.tolist() == slow.variance.tolist(), f"step {i}"
            assert batched.leaf_counts() == reference.leaf_counts()
            alc_fast = batched.expected_average_variance(probes[:4], probes[4:])
            alc_slow = reference.expected_average_variance_reference(
                probes[:4], probes[4:]
            )
            np.testing.assert_allclose(alc_fast, alc_slow, rtol=1e-12)
        finally:
            DynamicTreeRegressor._apply_prune = original_prune
            DynamicTreeRegressor._systematic_indices = original_systematic

        # Move-type coverage: both paths pruned and resampled along the way
        # (counts include both models, and grows are implied by leaf counts).
        assert prunes > 0, "trajectory never pruned; weaken the noise seed"
        assert resamples > 0, "trajectory never resampled"
        assert max(batched.leaf_counts()) > 1, "trajectory never grew"

    def test_fallback_generator_draws_trajectory(self):
        """A non-PCG64 bit generator falls back to plain Generator draws
        and still matches the reference path bit for bit."""
        X, y = _piecewise_data(70, 3, 11)
        batched = DynamicTreeRegressor(
            DynamicTreeConfig(n_particles=10, resample_threshold=0.9),
            rng=np.random.Generator(np.random.MT19937(5)),
        )
        reference = DynamicTreeRegressor(
            DynamicTreeConfig(
                n_particles=10, resample_threshold=0.9, vectorized=False
            ),
            rng=np.random.Generator(np.random.MT19937(5)),
        )
        batched.fit(X[:30], y[:30])
        reference.fit(X[:30], y[:30])
        probes = X[:6]
        for i in range(30, 70):
            batched.update(X[i], float(y[i]))
            reference.update(X[i], float(y[i]))
        fast = batched.predict(probes)
        slow = reference.predict(probes)
        assert fast.mean.tolist() == slow.mean.tolist()
        assert batched.leaf_counts() == reference.leaf_counts()


class TestCopyOnWriteResample:
    def _shared_node_map(self, model):
        """node id -> set of particle indices referencing it."""
        owners = {}

        def visit(node, particle):
            owners.setdefault(id(node), (node, set()))[1].add(particle)
            if node.left is not None:
                visit(node.left, particle)
                visit(node.right, particle)

        for index, root in enumerate(model._particles):
            visit(root, index)
        return owners

    def test_shared_nodes_are_always_protected_by_a_flag(self):
        """Every multiply-referenced node sits under a ``shared`` flag.

        The copy-on-write flags propagate lazily: duplicating a particle
        flags only the root, and cloning a flagged node flags its children.
        The soundness invariant is therefore not "every shared node is
        flagged" but "on every path from a root to a shared node, some
        node at-or-above it is flagged" — mutation walks from the root and
        clones at the first flag, so a protected node can never be reached
        for in-place mutation.
        """
        X, y = _piecewise_data(110, 4, 3)
        model = DynamicTreeRegressor(
            DynamicTreeConfig(n_particles=24, resample_threshold=1.0),
            rng=np.random.default_rng(9),
        )
        model.fit(X[:60], y[:60])
        for i in range(60, 110):
            model.update(X[i], float(y[i]))
            owners = self._shared_node_map(model)

            def check(node, protected, particle):
                protected = protected or node.shared
                if len(owners[id(node)][1]) > 1:
                    assert protected, (
                        f"unprotected node shared by "
                        f"{sorted(owners[id(node)][1])} (seen from {particle})"
                    )
                if node.left is not None:
                    check(node.left, protected, particle)
                    check(node.right, protected, particle)

            for index, root in enumerate(model._particles):
                check(root, False, index)

    def test_no_aliased_mutable_leaf_state_after_updates(self):
        """Mutating one particle never changes another's prediction.

        After a resample duplicates particles, each one's leaf models must
        behave as private state: absorbing further observations through the
        normal update path must keep every particle's per-node predictions
        identical to an eagerly-deep-copied reference twin.
        """
        X, y = _piecewise_data(120, 3, 21)
        batched, reference = _paired_models(4, particles=16, resample_threshold=1.0)
        batched.fit(X[:50], y[:50])
        reference.fit(X[:50], y[:50])
        probes = X[:8]
        for i in range(50, 120):
            batched.update(X[i], float(y[i]))
            reference.update(X[i], float(y[i]))
        # Per-particle comparison (not just the mixture): particle k of the
        # copy-on-write model must equal particle k of the eager-copy model.
        for k in range(batched.n_particles):
            fast_root = batched._particles[k]
            slow_root = reference._particles[k]
            for row in probes:
                fast_leaf = fast_root.descend(row)
                slow_leaf = slow_root.descend(row)
                assert fast_leaf.leaf.predictive_mean() == slow_leaf.leaf.predictive_mean()
                assert fast_leaf.leaf.count == slow_leaf.leaf.count

    def test_shared_flat_compilations_are_copied_before_patch(self):
        """Two particles never patch the same FlatTree caches object."""
        X, y = _piecewise_data(100, 3, 8)
        model = DynamicTreeRegressor(
            DynamicTreeConfig(n_particles=16, resample_threshold=1.0),
            rng=np.random.default_rng(2),
        )
        model.fit(X[:60], y[:60])
        for i in range(60, 100):
            model.update(X[i], float(y[i]))
            seen = {}
            for index, flat in enumerate(model._flat):
                if flat is None:
                    continue
                other = seen.setdefault(id(flat.caches.data), index)
                if other != index:
                    assert model._flat_shared[index] or model._flat_shared[other], (
                        f"particles {other} and {index} share leaf caches unflagged"
                    )


class TestSystematicResampler:
    """Regression tests for the fixed systematic resampling loop."""

    def _indices(self, weights, uniform, particles=None):
        model = DynamicTreeRegressor(DynamicTreeConfig(n_particles=2))
        return model._systematic_indices(np.asarray(weights, dtype=float), uniform)

    def test_drifted_cumsum_keeps_last_stratum_unbiased(self):
        """A cumulative sum that drifts below 1.0 must still map the last
        stratum into the final particle's true interval — not fall off the
        end of the array."""
        weights = np.full(10, 0.1)
        cumulative = np.cumsum(weights)
        assert cumulative[-1] != 1.0  # the adversarial premise: drift exists
        chosen = self._indices(weights, 0.999999999)
        assert len(chosen) == 10
        assert all(0 <= j <= 9 for j in chosen)
        # Equal weights + systematic positions => exactly one pick per stratum.
        assert chosen == list(range(10))

    def test_position_beyond_drifted_mass_selects_last_particle(self):
        """Positions between the drifted total and 1.0 belong to the last
        particle (its stratum is (cum[-2], 1] once the total is pinned)."""
        weights = np.array([0.3, 0.3, 0.4]) * (1.0 - 5e-16)
        weights /= weights.sum()
        chosen = self._indices(weights, 1.0 - 1e-12)
        assert chosen[-1] == 2

    def test_adversarial_tiny_tail_weights(self):
        """A tail of zero-mass particles never steals the last stratum."""
        weights = np.array([0.5, 0.5 - 6e-17, 2e-17, 2e-17, 2e-17])
        weights = weights / weights.sum()
        chosen = self._indices(weights, 0.99)
        # The last position (0.99 + 4)/5 = 0.998 lies inside particle 1's
        # stratum (~[0.5, 1.0)); the near-zero tail particles must not win
        # it by virtue of being stored last.
        assert chosen[-1] == 1

    def test_degenerate_single_heavy_weight(self):
        weights = np.zeros(8)
        weights[3] = 1.0
        chosen = self._indices(weights, 0.5)
        assert chosen == [3] * 8

    def test_counts_proportional_to_weights(self):
        # Four strata over [0, 1): positions 0.0025/0.2525/0.5025/0.7525
        # against cumulative [0.5, 0.75, 0.875, 1.0].
        weights = np.array([0.5, 0.25, 0.125, 0.125])
        chosen = self._indices(np.asarray(weights), 0.01)
        assert chosen == [0, 0, 1, 2]
        # Systematic sampling guarantee: a particle with weight w gets
        # floor(n*w) to ceil(n*w) copies.
        rng = np.random.default_rng(7)
        for _ in range(30):
            n = int(rng.integers(3, 20))
            w = rng.dirichlet(np.ones(n))
            counts = np.bincount(self._indices(w, rng.random()), minlength=n)
            for k in range(n):
                assert math.floor(n * w[k]) <= counts[k] <= math.ceil(n * w[k]) + 1

    def test_indices_are_sorted_and_in_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            n = int(rng.integers(2, 30))
            weights = rng.dirichlet(np.full(n, 0.05))
            chosen = self._indices(weights, rng.random())
            assert chosen == sorted(chosen)
            assert 0 <= min(chosen) and max(chosen) < n


class TestReplayDraws:
    """The bulk RNG replay must be indistinguishable from Generator calls."""

    @pytest.mark.parametrize("seed", [0, 3, 17, 99])
    def test_mixed_draw_stream_matches_generator(self, seed):
        reference = np.random.default_rng(seed)
        replayed = np.random.default_rng(seed)
        # Warm up through the Generator so a spare 32-bit half may be pending.
        script = np.random.default_rng(seed + 1000)
        for _ in range(int(script.integers(4))):
            reference.integers(7)
            replayed.integers(7)
        replay = ReplayDraws(replayed)
        assert replay.begin(32)
        for step in range(300):
            kind = int(script.integers(3))
            if kind == 0:
                bound = int(script.integers(1, 50))
                assert replay.integers(bound) == int(reference.integers(bound)), step
            elif kind == 1:
                assert replay.random() == reference.random(), step
            else:
                dims = int(script.integers(1, 8))
                n_unique = [int(v) for v in script.integers(1, 30, size=dims)]
                count = int(script.integers(1, 6))
                got = replay.draw_candidates(dims, n_unique, count)
                want_dims, want_cuts = [], []
                for _ in range(count):
                    dim = int(reference.integers(dims))
                    if n_unique[dim] < 2:
                        continue
                    want_dims.append(dim)
                    want_cuts.append(int(reference.integers(n_unique[dim] - 1)))
                assert got == (want_dims, want_cuts), step
        replay.end()
        # The stream position (and any spare half) carried over exactly.
        for _ in range(50):
            assert int(reference.integers(1000)) == int(replayed.integers(1000))
            assert reference.random() == replayed.random()

    def test_generator_draws_consume_identically(self):
        a = np.random.default_rng(5)
        b = np.random.default_rng(5)
        draws = GeneratorDraws(a)
        assert draws.integers(12) == int(b.integers(12))
        assert draws.draw_candidates(3, [5, 1, 9], 4) is not None
        for _ in range(4):
            dim = int(b.integers(3))
            if [5, 1, 9][dim] >= 2:
                b.integers([5, 1, 9][dim] - 1)
        assert draws.random() == b.random()

    def test_unsupported_bit_generator_declines(self):
        rng = np.random.Generator(np.random.MT19937(0))
        replay = ReplayDraws(rng)
        assert not replay.begin(16)

    @pytest.mark.parametrize("seed_base", [0, 1])
    def test_batched_candidate_stream_matches_generator(self, seed_base):
        """``draw_candidates_batch`` equals per-particle Generator draws.

        The trials are randomised over dims / particle counts / candidate
        counts, include ``n_unique`` values of 1 and 2 (forcing the skip and
        ``bound == 1`` shortcut paths that bail the vectorized layout into
        the scalar tail), and vary the spare-half parity through warm-up
        draws.  The post-call stream position must also match exactly.
        """
        for trial in range(60):
            script = np.random.default_rng(1000 * seed_base + trial)
            dims = int(script.integers(2, 8))
            n_particles = int(script.integers(1, 50))
            count = int(script.integers(1, 14))
            n_unique = script.integers(1, 12, size=(n_particles, dims)).astype(
                np.int32
            )
            grow = script.random(n_particles) < 0.7
            seed = int(script.integers(0, 2**31))
            burn = int(script.integers(0, 3))

            reference = np.random.default_rng(seed)
            for _ in range(burn):
                reference.integers(1000)
            ref = GeneratorDraws(reference)
            want = ([], [], [], [], [])
            for i in range(n_particles):
                if grow[i]:
                    drawn_dims, drawn_cuts = ref.draw_candidates(
                        dims, n_unique[i].tolist(), count
                    )
                    want[0].extend([i] * len(drawn_dims))
                    want[1].extend(range(len(drawn_dims)))
                    want[2].extend(drawn_dims)
                    want[3].extend(drawn_cuts)
                want[4].append(ref.random())

            replayed = np.random.default_rng(seed)
            for _ in range(burn):
                replayed.integers(1000)
            replay = ReplayDraws(replayed)
            assert replay.begin(16)
            cp, cs, cd, cc, uniforms = replay.draw_candidates_batch(
                dims, n_unique, grow, count
            )
            replay.end()
            assert cp.tolist() == want[0], trial
            assert cs.tolist() == want[1], trial
            assert cd.tolist() == want[2], trial
            assert cc.tolist() == want[3], trial
            assert uniforms.tolist() == want[4], trial
            assert int(reference.integers(2**32)) == int(
                replayed.integers(2**32)
            ), trial
            assert reference.random() == replayed.random(), trial


class TestLeafCacheEquivalence:
    def test_lml_cache_matches_from_stats_bitwise(self):
        prior = NIGPrior(mean=0.7, kappa=0.1, alpha=3.0, beta=0.4)
        cache = LMLCache(prior)
        rng = np.random.default_rng(0)
        for _ in range(500):
            n = int(rng.integers(0, 60))
            total = float(rng.normal() * 10.0 ** rng.integers(-3, 4))
            total_sq = abs(total) * float(rng.uniform(0.5, 4.0)) + n * 0.1
            assert cache.log_marginal_likelihood(n, total, total_sq) == (
                log_marginal_likelihood_from_stats(prior, n, total, total_sq)
            )

    def test_lml_cache_matches_leaf_objects(self):
        prior = NIGPrior(mean=-0.2, kappa=0.1, alpha=3.0, beta=0.9)
        cache = LMLCache(prior)
        rng = np.random.default_rng(1)
        for _ in range(100):
            values = rng.normal(1.5, 0.8, size=int(rng.integers(1, 25)))
            leaf = GaussianLeafModel.from_values(prior, [float(v) for v in values])
            n, total, total_sq = leaf.sufficient_stats()
            assert cache.log_marginal_likelihood(n, total, total_sq) == (
                leaf.log_marginal_likelihood()
            )

    def test_logpdf_terms_decomposition_matches_direct_formula(self):
        """``const - coef*log1p(z)`` equals the original one-expression
        Student-t log-pdf bit for bit."""
        prior = NIGPrior(mean=0.3, kappa=0.1, alpha=3.0, beta=0.6)
        rng = np.random.default_rng(2)
        for _ in range(200):
            leaf = GaussianLeafModel.from_values(
                prior, [float(v) for v in rng.normal(2.0, 1.0, int(rng.integers(1, 20)))]
            )
            value = float(rng.normal(2.0, 3.0))
            mean_n, kappa_n, alpha_n, beta_n = leaf.posterior()
            dof = 2.0 * alpha_n
            scale_sq = beta_n * (kappa_n + 1.0) / (alpha_n * kappa_n)
            z_sq = (value - mean_n) ** 2 / (dof * scale_sq)
            direct = (
                math.lgamma((dof + 1.0) / 2.0)
                - math.lgamma(dof / 2.0)
                - 0.5 * math.log(dof * math.pi * scale_sq)
                - (dof + 1.0) / 2.0 * math.log1p(z_sq)
            )
            assert leaf.predictive_logpdf(value) == direct

    def test_cache_arrays_roundtrip(self):
        prior = NIGPrior(mean=0.0, kappa=0.1, alpha=3.0, beta=0.5)
        rng = np.random.default_rng(3)
        leaves = [
            GaussianLeafModel.from_values(
                prior, [float(v) for v in rng.normal(size=int(rng.integers(1, 10)))]
            )
            for _ in range(7)
        ]
        arrays = LeafCacheArrays.from_leaves(leaves)
        for slot, leaf in enumerate(leaves):
            assert arrays.mean[slot] == leaf.predictive_mean()
            assert arrays.variance[slot] == leaf.predictive_variance()
            assert arrays.count[slot] == leaf.count
            mean, scale, coef, const = arrays.logpdf_row(slot)
            want = leaf.predictive_logpdf_terms()
            assert (mean, scale, coef, const) == want
        # Copies are independent: patching one never leaks into the other.
        clone = arrays.copy()
        leaves[0].add(10.0)
        clone.patch(0, leaves[0])
        assert clone.mean[0] != arrays.mean[0]
        assert arrays.mean[1] == clone.mean[1]
