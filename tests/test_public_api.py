"""Tests of the public API surface: imports, exports and documentation.

A downstream user should be able to reach everything through the documented
package entry points; these tests pin the public names so accidental
breakage of the API surface is caught.
"""

from __future__ import annotations

import importlib

import pytest

import repro


PACKAGES = [
    "repro.core",
    "repro.models",
    "repro.spapt",
    "repro.measurement",
    "repro.machine",
    "repro.ir",
    "repro.experiments",
]

#: The documented public API surface: these modules must carry substantive
#: module docstrings (README and docs/ link into them).
DOCUMENTED_MODULES = [
    "repro",
    "repro.core.learner",
    "repro.models.dynamic_tree",
    "repro.experiments.registry",
    "repro.experiments.run_all",
    "repro.experiments.runner",
]


class TestImports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_subpackage_importable(self, package):
        module = importlib.import_module(package)
        assert module.__doc__, f"{package} has no module docstring"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.{name} is exported but missing"

    def test_version_present(self):
        assert repro.__version__

    @pytest.mark.parametrize("module_name", DOCUMENTED_MODULES)
    def test_public_surface_module_docstrings(self, module_name):
        """The public API surface carries non-empty module docstrings."""
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip(), (
            f"{module_name} has no module docstring"
        )
        # Substantive documentation, not a placeholder one-liner.
        assert len(module.__doc__.strip()) > 120, (
            f"{module_name}'s module docstring is a stub"
        )


class TestDocumentedQuickstart:
    def test_readme_quickstart_names_exist(self):
        """The names used by the README quickstart are part of the public API."""
        from repro.core import ActiveLearner, LearnerConfig, build_test_set, sequential_plan
        from repro.spapt import get_benchmark

        assert callable(build_test_set)
        assert callable(sequential_plan)
        assert callable(get_benchmark)
        assert ActiveLearner is not None
        assert LearnerConfig is not None

    def test_core_public_classes_have_docstrings(self):
        from repro import core, models

        for module in (core, models):
            for name in module.__all__:
                obj = getattr(module, name)
                if isinstance(obj, type):
                    assert obj.__doc__, f"{module.__name__}.{name} lacks a docstring"

    def test_benchmark_names_are_the_papers_eleven(self):
        from repro.spapt import benchmark_names

        assert benchmark_names() == [
            "adi",
            "atax",
            "bicgkernel",
            "correlation",
            "dgemv3",
            "gemver",
            "hessian",
            "jacobi",
            "lu",
            "mm",
            "mvt",
        ]

    def test_paper_reference_tables_are_consistent(self):
        from repro.experiments import PAPER_TABLE1_SPEEDUPS
        from repro.spapt import PAPER_SEARCH_SPACE_SIZES

        assert set(PAPER_TABLE1_SPEEDUPS) == set(PAPER_SEARCH_SPACE_SIZES)


class TestRunAll:
    def test_run_all_smoke(self):
        from repro.experiments import ExperimentScale
        from repro.experiments.run_all import run_all

        report = run_all(ExperimentScale.smoke(benchmarks=("mm",)))
        assert "Table 1" in report
        assert "Table 2" in report
        assert "Figure 1" in report
        assert "Figure 2" in report
        assert "Figure 5" in report
        assert "Figure 6" in report

    def test_scale_lookup(self):
        from repro.experiments.run_all import _scale_from_name

        assert _scale_from_name("smoke").name == "smoke"
        with pytest.raises(ValueError):
            _scale_from_name("huge")

    def test_help_is_self_explanatory_about_paper_runs(self, capsys):
        """`run_all --help` documents the sharded paper-run workflow."""
        from repro.experiments.run_all import main

        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        for needle in ("--paper-run", "--resume", "--run-dir", "--workers"):
            assert needle in out, f"--help does not mention {needle}"
        assert "checkpoint" in out
        assert "worker processes" in out

    def test_runner_api_exported(self):
        from repro.experiments import (
            ExperimentRunner,
            ExperimentSpec,
            RunManifest,
            RunnerError,
            UnitContext,
            WorkUnit,
            get_spec,
            run_artifacts,
            run_paper_run,
            spec_names,
        )
        from repro.core import LearnerCheckpoint

        for obj in (ExperimentRunner, ExperimentSpec, RunManifest, RunnerError,
                    UnitContext, WorkUnit, get_spec, run_artifacts,
                    run_paper_run, spec_names, LearnerCheckpoint):
            assert obj.__doc__

    def test_every_registered_spec_satisfies_the_contract(self):
        """Each spec declares name/title, resolves its dependencies, and
        its unit ids are namespaced by the artifact."""
        from repro.experiments import get_spec, spec_names

        for name in spec_names():
            spec = get_spec(name)
            assert spec.name == name
            assert spec.title
            for dependency in spec.depends_on:
                assert get_spec(dependency) is not spec
            from repro.experiments import ExperimentScale

            units = spec.work_units(ExperimentScale.smoke(benchmarks=("mm",)))
            assert all(unit.unit_id.startswith(name) for unit in units)
