"""Unit and property tests for repro.measurement.stats."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.measurement.stats import (
    RunningStats,
    SampleSummary,
    ci_to_mean_ratio,
    confidence_interval_halfwidth,
    geometric_mean,
    mean_absolute_error,
    root_mean_squared_error,
    summarize,
    welford_update,
)


class TestSummarize:
    def test_single_observation(self):
        summary = summarize([2.5])
        assert summary.count == 1
        assert summary.mean == 2.5
        assert summary.variance == 0.0
        assert summary.ci_halfwidth == 0.0
        assert summary.minimum == summary.maximum == 2.5

    def test_known_values(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.count == 3
        assert summary.mean == pytest.approx(2.0)
        assert summary.variance == pytest.approx(1.0)
        assert summary.std == pytest.approx(1.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0

    def test_ci_halfwidth_matches_student_t(self):
        values = [1.0, 2.0, 3.0, 4.0]
        summary = summarize(values)
        from scipy import stats as sps

        sem = np.std(values, ddof=1) / math.sqrt(4)
        expected = sps.t.ppf(0.975, df=3) * sem
        assert summary.ci_halfwidth == pytest.approx(expected)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_ci_validation_threshold(self):
        low_noise = summarize([1.0, 1.0000001, 0.9999999, 1.0])
        assert low_noise.passes_ci_validation(threshold=0.01)
        high_noise = summarize([1.0, 2.0, 0.5, 3.0])
        assert not high_noise.passes_ci_validation(threshold=0.01)

    def test_identical_values_zero_ci(self):
        summary = summarize([3.0] * 10)
        assert summary.variance == 0.0
        assert summary.ci_halfwidth == 0.0
        assert summary.ci_to_mean == 0.0


class TestConfidenceInterval:
    def test_fewer_than_two_observations(self):
        assert confidence_interval_halfwidth([1.0]) == 0.0

    def test_shrinks_with_more_observations(self):
        rng = np.random.default_rng(0)
        small = rng.normal(1.0, 0.1, size=5)
        large = np.concatenate([small, rng.normal(1.0, 0.1, size=95)])
        assert confidence_interval_halfwidth(large) < confidence_interval_halfwidth(small)

    def test_zero_mean_ratio(self):
        assert ci_to_mean_ratio(0.0, 0.0) == 0.0
        assert ci_to_mean_ratio(0.0, 0.5) == math.inf

    def test_ratio_is_absolute(self):
        assert ci_to_mean_ratio(-2.0, 0.5) == pytest.approx(0.25)


class TestErrors:
    def test_mae(self):
        assert mean_absolute_error([1.0, 2.0], [2.0, 4.0]) == pytest.approx(1.5)

    def test_rmse(self):
        assert root_mean_squared_error([1.0, 2.0], [2.0, 4.0]) == pytest.approx(
            math.sqrt((1 + 4) / 2)
        )

    def test_rmse_at_least_mae(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=50)
        b = rng.normal(size=50)
        assert root_mean_squared_error(a, b) >= mean_absolute_error(a, b) - 1e-12

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mean_absolute_error([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            root_mean_squared_error([1.0], [1.0, 2.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_absolute_error([], [])
        with pytest.raises(ValueError):
            root_mean_squared_error([], [])

    def test_perfect_prediction(self):
        values = [0.1, 0.2, 0.3]
        assert root_mean_squared_error(values, values) == 0.0
        assert mean_absolute_error(values, values) == 0.0


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_matches_paper_summary_shape(self):
        # A mixture of speed-ups and one slowdown, like Table 1.
        speedups = [0.29, 13.93, 3.59, 7.07, 23.52, 26.0, 3.69, 3.55, 3.62, 1.11, 1.18]
        assert geometric_mean(speedups) == pytest.approx(3.97, abs=0.05)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])


class TestRunningStats:
    def test_matches_batch_summary(self, rng):
        values = rng.lognormal(0.0, 0.3, size=40)
        running = RunningStats()
        running.extend(values)
        batch = summarize(values)
        online = running.summary()
        assert online.count == batch.count
        assert online.mean == pytest.approx(batch.mean)
        assert online.variance == pytest.approx(batch.variance)
        assert online.ci_halfwidth == pytest.approx(batch.ci_halfwidth)
        assert online.minimum == pytest.approx(batch.minimum)
        assert online.maximum == pytest.approx(batch.maximum)

    def test_empty_raises(self):
        running = RunningStats()
        with pytest.raises(ValueError):
            _ = running.mean
        with pytest.raises(ValueError):
            running.summary()

    def test_single_value(self):
        running = RunningStats()
        running.add(5.0)
        assert running.count == 1
        assert running.mean == 5.0
        assert running.variance == 0.0


class TestWelford:
    def test_single_step(self):
        count, mean, m2 = welford_update(0, 0.0, 0.0, 3.0)
        assert count == 1
        assert mean == 3.0
        assert m2 == 0.0


# --------------------------------------------------------------------------
# Property-based tests
# --------------------------------------------------------------------------

finite_floats = st.floats(
    min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@given(st.lists(finite_floats, min_size=1, max_size=50))
@settings(max_examples=60, deadline=None)
def test_summary_bounds_property(values):
    summary = summarize(values)
    # Allow one ulp of slack: the mean of identical values can differ from
    # them by a rounding error.
    slack = 1e-9 * max(abs(summary.minimum), abs(summary.maximum), 1.0)
    assert summary.minimum - slack <= summary.mean <= summary.maximum + slack
    assert summary.variance >= 0.0
    assert summary.ci_halfwidth >= 0.0


@given(st.lists(finite_floats, min_size=2, max_size=50))
@settings(max_examples=60, deadline=None)
def test_running_stats_matches_numpy_property(values):
    running = RunningStats()
    running.extend(values)
    assert running.mean == pytest.approx(float(np.mean(values)), rel=1e-9)
    assert running.variance == pytest.approx(float(np.var(values, ddof=1)), rel=1e-6, abs=1e-9)


@given(
    st.lists(finite_floats, min_size=1, max_size=30),
    st.lists(finite_floats, min_size=1, max_size=30),
)
@settings(max_examples=60, deadline=None)
def test_rmse_dominates_mae_property(a, b):
    n = min(len(a), len(b))
    a, b = a[:n], b[:n]
    assert root_mean_squared_error(a, b) >= mean_absolute_error(a, b) - 1e-9


@given(st.lists(finite_floats, min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_geometric_mean_bounds_property(values):
    gm = geometric_mean(values)
    slack = 1e-9 * max(abs(max(values)), 1.0)
    assert min(values) - slack <= gm <= max(values) + slack
