"""Tests for the affine index-expression language."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.expr import Add, Const, Mul, Var, affine_coefficients, substitute, to_expr


class TestConstruction:
    def test_to_expr_int(self):
        expr = to_expr(5)
        assert isinstance(expr, Const)
        assert expr.evaluate({}) == 5

    def test_to_expr_str(self):
        expr = to_expr("i")
        assert isinstance(expr, Var)
        assert expr.evaluate({"i": 7}) == 7

    def test_to_expr_passthrough(self):
        expr = Var("i")
        assert to_expr(expr) is expr

    def test_to_expr_rejects_bool_and_float(self):
        with pytest.raises(TypeError):
            to_expr(True)
        with pytest.raises(TypeError):
            to_expr(1.5)

    def test_unbound_variable_raises(self):
        with pytest.raises(KeyError):
            Var("i").evaluate({"j": 3})


class TestOperators:
    def test_addition_and_multiplication(self):
        expr = Var("i") * 3 + 2
        assert expr.evaluate({"i": 4}) == 14

    def test_right_hand_operators(self):
        expr = 2 + 3 * Var("i")
        assert expr.evaluate({"i": 5}) == 17

    def test_subtraction(self):
        expr = Var("i") - 1
        assert expr.evaluate({"i": 10}) == 9

    def test_free_vars(self):
        expr = Var("i") * Var("N") + Var("j")
        assert expr.free_vars() == frozenset({"i", "N", "j"})
        assert Const(3).free_vars() == frozenset()

    def test_str_rendering(self):
        assert str(Var("i") + 1) == "(i + 1)"


class TestSubstitute:
    def test_substitute_variable(self):
        expr = Var("i") + Var("j")
        result = substitute(expr, {"i": Var("i") + 4})
        assert result.evaluate({"i": 1, "j": 2}) == 7

    def test_substitute_with_int(self):
        expr = Var("i") * 2
        assert substitute(expr, {"i": 3}).evaluate({}) == 6

    def test_substitute_leaves_other_vars(self):
        expr = Var("i") + Var("j")
        result = substitute(expr, {"i": 0})
        assert result.free_vars() == frozenset({"j"})

    def test_substitute_constant_is_identity(self):
        expr = Const(5)
        assert substitute(expr, {"i": 1}) is expr


class TestAffineCoefficients:
    def test_simple_variable(self):
        assert affine_coefficients(Var("i")) == {"i": 1}

    def test_constant(self):
        assert affine_coefficients(Const(7)) == {"": 7}

    def test_linear_combination(self):
        expr = Var("i") * 4 + Var("j") + 3
        coeffs = affine_coefficients(expr)
        assert coeffs["i"] == 4
        assert coeffs["j"] == 1
        assert coeffs[""] == 3

    def test_subtraction_coefficients(self):
        coeffs = affine_coefficients(Var("i") - 1)
        assert coeffs["i"] == 1
        assert coeffs[""] == -1

    def test_nonaffine_raises(self):
        with pytest.raises(ValueError):
            affine_coefficients(Var("i") * Var("j"))

    def test_scaled_sum(self):
        coeffs = affine_coefficients((Var("i") + Var("j")) * 3)
        assert coeffs == {"i": 3, "j": 3}


# --------------------------------------------------------------------------
# Property-based tests
# --------------------------------------------------------------------------

small_ints = st.integers(min_value=-20, max_value=20)


@st.composite
def affine_exprs(draw, depth=0):
    """Random affine expressions over variables i, j, k."""
    if depth >= 3 or draw(st.booleans()):
        if draw(st.booleans()):
            return Const(draw(small_ints))
        return Var(draw(st.sampled_from(["i", "j", "k"])))
    left = draw(affine_exprs(depth=depth + 1))
    right = draw(affine_exprs(depth=depth + 1))
    if draw(st.booleans()):
        return Add(left, right)
    # Keep products affine: one side must be constant.
    return Mul(Const(draw(small_ints)), right)


@given(affine_exprs(), small_ints, small_ints, small_ints)
@settings(max_examples=80, deadline=None)
def test_affine_coefficients_reconstruct_value(expr, i, j, k):
    """Evaluating via the extracted coefficients matches direct evaluation."""
    bindings = {"i": i, "j": j, "k": k}
    coeffs = affine_coefficients(expr)
    reconstructed = coeffs.get("", 0) + sum(
        c * bindings[name] for name, c in coeffs.items() if name
    )
    assert reconstructed == expr.evaluate(bindings)


@given(affine_exprs(), small_ints, small_ints, small_ints, small_ints)
@settings(max_examples=80, deadline=None)
def test_substitution_matches_direct_binding(expr, i, j, k, offset):
    """substitute(i -> i + offset) then evaluating equals evaluating at i + offset."""
    shifted = substitute(expr, {"i": Var("i") + Const(offset)})
    direct = expr.evaluate({"i": i + offset, "j": j, "k": k})
    assert shifted.evaluate({"i": i, "j": j, "k": k}) == direct
