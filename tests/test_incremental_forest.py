"""Equivalence tests for the incrementally maintained FlatForest.

The incremental forest (``DynamicTreeConfig(incremental_forest=True)``, the
default) must be indistinguishable from rebuilding the concatenation with
``FlatForest.from_trees`` after every update: bit-identical predictions and
ALC scores across long update sequences (covering stay/grow/prune moves,
resample permutations and copy-on-write cache copies), and live segments
that match a fresh compilation of every particle exactly.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.models.dynamic_tree import DynamicTreeConfig, DynamicTreeRegressor
from repro.models.flat_tree import FlatTree, IncrementalForest


def _training_data(size, dims=5, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1.5, 1.5, size=(size, dims))
    y = (
        1.0
        + 0.3 * X[:, 0]
        + np.where(X[:, 1] > 0, 0.5, 0.0)
        + rng.normal(0, 0.05, size)
    )
    return X, y


def _model_pair(n_particles=40, seed=3, resample_threshold=0.5):
    """Identically seeded models, incremental forest on vs off."""
    config = DynamicTreeConfig(
        n_particles=n_particles,
        incremental_forest=True,
        resample_threshold=resample_threshold,
    )
    incremental = DynamicTreeRegressor(config, rng=np.random.default_rng(seed))
    rebuild = DynamicTreeRegressor(
        dataclasses.replace(config, incremental_forest=False),
        rng=np.random.default_rng(seed),
    )
    return incremental, rebuild


class TestBitIdentity:
    def test_predict_and_alc_bit_identical_across_updates(self):
        X, y = _training_data(240)
        incremental, rebuild = _model_pair()
        incremental.fit(X[:30], y[:30])
        rebuild.fit(X[:30], y[:30])
        rng = np.random.default_rng(9)
        probe = rng.uniform(-1.5, 1.5, size=(30, X.shape[1]))
        reference = rng.uniform(-1.5, 1.5, size=(20, X.shape[1]))
        for i in range(30, 240):
            incremental.update(X[i], float(y[i]))
            rebuild.update(X[i], float(y[i]))
            p_inc = incremental.predict(probe)
            p_reb = rebuild.predict(probe)
            assert np.array_equal(p_inc.mean, p_reb.mean)
            assert np.array_equal(p_inc.variance, p_reb.variance)
            scores_inc = incremental.expected_average_variance(probe, reference)
            scores_reb = rebuild.expected_average_variance(probe, reference)
            assert np.array_equal(scores_inc, scores_reb)

    def test_aggressive_resampling_stays_bit_identical(self):
        """A resample-every-update regime exercises permutations, duplicate
        sharing and copy-on-write cache copies on every single sync."""
        X, y = _training_data(120, seed=5)
        incremental, rebuild = _model_pair(resample_threshold=1.0, seed=11)
        incremental.fit(X[:20], y[:20])
        rebuild.fit(X[:20], y[:20])
        probe = X[:25]
        for i in range(20, 120):
            incremental.update(X[i], float(y[i]))
            rebuild.update(X[i], float(y[i]))
            p_inc = incremental.predict(probe)
            p_reb = rebuild.predict(probe)
            assert np.array_equal(p_inc.mean, p_reb.mean)
            assert np.array_equal(p_inc.variance, p_reb.variance)

    def test_trajectories_match_reference_implementation(self):
        """The incremental forest sits on top of the vectorized kernels, so
        the whole stack must still replay the per-particle reference."""
        X, y = _training_data(90, seed=7)
        config = DynamicTreeConfig(n_particles=12, incremental_forest=True)
        vectorized = DynamicTreeRegressor(config, rng=np.random.default_rng(2))
        reference = DynamicTreeRegressor(
            dataclasses.replace(config, vectorized=False),
            rng=np.random.default_rng(2),
        )
        vectorized.fit(X[:15], y[:15])
        reference.fit(X[:15], y[:15])
        probe = X[:20]
        for i in range(15, 90):
            vectorized.update(X[i], float(y[i]))
            reference.update(X[i], float(y[i]))
        p_vec = vectorized.predict(probe)
        p_ref = reference.predict(probe)
        assert np.array_equal(p_vec.mean, p_ref.mean)
        assert np.array_equal(p_vec.variance, p_ref.variance)


class TestSegments:
    def test_live_segments_match_fresh_compilations(self):
        """After a sync every slot's live segment equals a from-scratch
        compile of that particle (cache rows exactly; structure arrays on
        the entries routing can reach)."""
        X, y = _training_data(200)
        model, _ = _model_pair(n_particles=30)
        model.fit(X[:25], y[:25])
        for i in range(25, 200):
            model.update(X[i], float(y[i]))
        model.predict(X[:5])  # forces the sync
        cache = model._forest_cache
        assert cache is not None
        forest = cache.forest
        for slot in range(model.n_particles):
            fresh = FlatTree.compile(model._particles[slot])
            node_offset = int(cache._node_offsets[slot])
            leaf_offset = int(cache._leaf_offsets[slot])
            nodes = slice(node_offset, node_offset + fresh.n_nodes)
            assert np.array_equal(forest.split_dim[nodes], fresh.split_dim)
            assert np.array_equal(forest.split_value[nodes], fresh.split_value)
            internal = fresh.split_dim >= 0
            assert np.array_equal(
                forest.left[nodes][internal], fresh.left[internal] + node_offset
            )
            assert np.array_equal(
                forest.right[nodes][internal], fresh.right[internal] + node_offset
            )
            leaves = ~internal
            assert np.array_equal(
                forest.leaf_slot[nodes][leaves],
                fresh.leaf_slot[leaves] + leaf_offset,
            )
            assert np.array_equal(
                forest.caches.data[leaf_offset : leaf_offset + fresh.n_leaves],
                fresh.caches.data,
            )

    def test_capacity_overflow_forces_rebuild(self):
        X, y = _training_data(60)
        model, _ = _model_pair(n_particles=8)
        model.fit(X[:10], y[:10])
        model.predict(X[:3])
        first = model._forest_cache
        assert first is not None
        # Grow the trees far beyond the 2x capacity of the first build.
        for i in range(10, 60):
            model.update(X[i], float(y[i]))
            model.predict(X[:3])
        # Some intermediate sync must have replaced the original cache.
        assert model._forest_cache is not None
        assert model._forest_cache is not first

    def test_sync_rejects_particle_count_change(self):
        X, y = _training_data(30)
        model, _ = _model_pair(n_particles=6)
        model.fit(X[:12], y[:12])
        model.predict(X[:3])
        cache = model._forest_cache
        trees = [model._flat_tree(i) for i in range(model.n_particles)]
        assert cache.sync(trees, {}) is True
        assert cache.sync(trees[:-1], {}) is False


class TestIncrementalForestUnit:
    def test_stale_row_batch_applies_latest_value(self):
        X, y = _training_data(40)
        model, _ = _model_pair(n_particles=4)
        model.fit(X[:20], y[:20])
        model.predict(X[:3])
        cache = model._forest_cache
        trees = [model._flat_tree(i) for i in range(model.n_particles)]
        row = tuple(float(v) for v in trees[0].caches.data[0])
        bumped = (row[0] + 1.0,) + row[1:]
        trees[0].caches.data[0] = bumped
        assert cache.sync(trees, {(0, 0): bumped}) is True
        offset = int(cache._leaf_offsets[0])
        assert tuple(cache.forest.caches.data[offset]) == bumped

    def test_requires_at_least_one_tree(self):
        with pytest.raises(ValueError):
            IncrementalForest([])
