"""Batch-mode acquisition: ``TuningSession.ask(k)`` and its contracts.

The load-bearing guarantees:

* **k=1 bit-identity** — every batch strategy's ``k=1`` selection, and the
  batch driver at ``batch_size=1``, reproduce the sequential ALC path
  exactly (curve, ledger, RNG stream) across all sampling plans;
* **fold determinism** — out-of-order ``tell()`` arrival folds in ask
  order: the trajectory is a function of the requests, not of measurement
  races;
* **mid-batch checkpointing** — a session pickled with a batch partially
  answered resumes with the same pending requests and continues
  bit-identically;
* **batch semantics** — distinct configurations per batch, truncation at
  the example budget and phase boundaries, duplicate/foreign tells
  rejected;
* **end-to-end** — the ``batch-acquisition`` registry arm runs on both
  the in-memory backend and the sharded runner.
"""

from __future__ import annotations

import dataclasses
import pickle

import numpy as np
import pytest

from repro.core.acquisition import (
    ALCAcquisition,
    DiversityPenaltyAcquisition,
    GreedyALCFantasyAcquisition,
    make_acquisition,
)
from repro.core.evaluation import build_test_set
from repro.core.learner import ActiveLearner, LearnerConfig
from repro.core.plans import adaptive_ci_plan, fixed_plan, sequential_plan
from repro.experiments.config import ExperimentScale
from repro.experiments.registry import run_artifacts
from repro.experiments.runner import run_paper_run
from repro.measurement.broker import ProfilerBroker, measure_batch
from repro.measurement.profiler import Profiler
from repro.models.gp import GaussianProcessRegressor
from repro.spapt.suite import get_benchmark

SMALL = LearnerConfig(
    n_initial=4,
    seed_observations=4,
    n_candidates=15,
    max_training_examples=24,
    reference_size=10,
    evaluation_interval=5,
    tree_particles=8,
)

PLANS = {
    "fixed3": lambda: fixed_plan(3),
    "fixed1": lambda: fixed_plan(1),
    "sequential": lambda: sequential_plan(5),
    "adaptive": lambda: adaptive_ci_plan(0.05, max_observations=6),
}

BATCH_STRATEGIES = ("greedy-alc-fantasy", "diversity-penalty", "random")


@pytest.fixture(scope="module")
def mm():
    return get_benchmark("mm")


def _test_set(benchmark):
    return build_test_set(
        benchmark, size=30, observations=2, rng=np.random.default_rng(42)
    )


def _fingerprint(result):
    return (
        [
            (p.cost_seconds, p.rmse, p.training_examples, p.observations)
            for p in result.curve.points
        ],
        (
            result.ledger.compile_seconds,
            result.ledger.runtime_seconds,
            result.ledger.compilations,
            result.ledger.executions,
        ),
        result.observation_counts,
        result.training_examples,
    )


def _start_session(mm, plan, acquisition=None, seed=777, config=SMALL):
    learner = ActiveLearner(
        mm,
        plan=plan,
        acquisition=acquisition,
        config=config,
        rng=np.random.default_rng(seed),
    )
    session = learner.start_session(_test_set(mm))
    broker = ProfilerBroker(Profiler(mm, rng=session.rng))
    return session, broker


def _drive_sequential(mm, plan, acquisition=None, seed=777):
    session, broker = _start_session(mm, plan, acquisition, seed)
    while (request := session.ask()) is not None:
        session.tell(broker.measure(request))
    return _fingerprint(session.result()), session.rng.bit_generator.state


def _drive_batched(mm, plan, k, acquisition=None, seed=777, tell_order=None,
                   config=SMALL):
    """Drive a session with ask(k); measure in ask order, tell in
    ``tell_order`` (a permutation function of the batch length)."""
    session, broker = _start_session(mm, plan, acquisition, seed, config=config)
    order = tell_order if tell_order is not None else lambda n: range(n)
    while True:
        requests = session.ask(k)
        if requests is None or requests == []:
            break
        if not isinstance(requests, list):  # ask(1) returns a bare request
            requests = [requests]
        results = [broker.measure(request) for request in requests]
        for index in order(len(results)):
            session.tell(results[index])
    return _fingerprint(session.result()), session.rng.bit_generator.state


class TestAskOneBitIdentity:
    """ask(1) — and every strategy's k=1 batch — is the sequential path."""

    @pytest.mark.parametrize("plan_name", sorted(PLANS))
    def test_batch_strategies_at_k1_match_sequential_alc(self, mm, plan_name):
        expected = _drive_sequential(mm, PLANS[plan_name](), ALCAcquisition())
        for strategy in ("greedy-alc-fantasy", "diversity-penalty"):
            sequential = _drive_sequential(
                mm, PLANS[plan_name](), make_acquisition(strategy)
            )
            assert sequential == expected, strategy
            batched = _drive_batched(
                mm, PLANS[plan_name](), k=1, acquisition=make_acquisition(strategy)
            )
            assert batched == expected, strategy

    def test_run_driver_batch_size_one_matches_plain_run(self, mm):
        def run(batch_size):
            learner = ActiveLearner(
                mm, plan=sequential_plan(5), config=SMALL,
                rng=np.random.default_rng(777),
            )
            return _fingerprint(learner.run(_test_set(mm), batch_size=batch_size))

        assert run(1) == run(batch_size=1)
        learner = ActiveLearner(
            mm, plan=sequential_plan(5), config=SMALL,
            rng=np.random.default_rng(777),
        )
        assert run(1) == _fingerprint(learner.run(_test_set(mm)))

    def test_select_batch_k1_consumes_the_generator_like_select(self, mm):
        model = GaussianProcessRegressor()
        rng = np.random.default_rng(3)
        X = rng.normal(size=(12, 4))
        model.fit(X, rng.normal(size=12))
        candidates = rng.normal(size=(9, 4))
        reference = rng.normal(size=(5, 4))
        for acquisition in (
            ALCAcquisition(),
            GreedyALCFantasyAcquisition(),
            DiversityPenaltyAcquisition(),
        ):
            a, b = np.random.default_rng(11), np.random.default_rng(11)
            single = acquisition.select(model, candidates, reference, a)
            batch = acquisition.select_batch(model, candidates, reference, b, 1)
            assert batch == [single]
            assert a.bit_generator.state == b.bit_generator.state


class TestFoldDeterminism:
    """Shuffled tell() arrival folds identically to in-order arrival."""

    @pytest.mark.parametrize("strategy", BATCH_STRATEGIES)
    def test_reversed_and_shuffled_tells_match_in_order(self, mm, strategy):
        def shuffled(n, _rng=np.random.default_rng(5)):
            return _rng.permutation(n)

        in_order = _drive_batched(
            mm, sequential_plan(5), k=3, acquisition=make_acquisition(strategy)
        )
        reversed_order = _drive_batched(
            mm, sequential_plan(5), k=3, acquisition=make_acquisition(strategy),
            tell_order=lambda n: reversed(range(n)),
        )
        shuffled_order = _drive_batched(
            mm, sequential_plan(5), k=3, acquisition=make_acquisition(strategy),
            tell_order=shuffled,
        )
        assert reversed_order == in_order
        assert shuffled_order == in_order

    def test_seeding_batches_fold_deterministically_too(self, mm):
        # k covers the whole seed phase in one batch; reversed arrival
        # must not change the seed targets' order.
        in_order = _drive_batched(mm, fixed_plan(3), k=4)
        reversed_order = _drive_batched(
            mm, fixed_plan(3), k=4, tell_order=lambda n: reversed(range(n))
        )
        assert reversed_order == in_order


class TestMidBatchPickle:
    """A session pickled mid-batch resumes with the same pending requests."""

    def _advance_to_learning(self, session, broker):
        while session.phase == "seeding":
            for result in measure_batch(broker, session.ask(2)):
                session.tell(result)

    def test_round_trip_restores_pending_requests_and_trajectory(self, mm):
        session, broker = _start_session(mm, sequential_plan(5))
        self._advance_to_learning(session, broker)
        requests = session.ask(4)
        assert len(requests) == 4
        results = [broker.measure(request) for request in requests]
        session.tell(results[0])
        session.tell(results[2])

        blob = pickle.dumps(session)
        clone = pickle.loads(blob)
        clone.attach_benchmark(get_benchmark("mm"))
        assert [r.configuration for r in clone.pending_requests] == [
            requests[1].configuration,
            requests[3].configuration,
        ]

        # Answer the outstanding requests on both; the fold happens on the
        # last tell and both sessions continue bit-identically.
        for target in (session, clone):
            target.tell(results[1])
            target.tell(results[3])
        assert clone.pending_requests == []

        def finish(target):
            b = ProfilerBroker(Profiler(get_benchmark("mm"), rng=target.rng))
            while (batch := target.ask(4)):
                for result in measure_batch(b, batch):
                    target.tell(result)
            return _fingerprint(target.result()), target.rng.bit_generator.state

        assert finish(clone) == finish(session)

    def test_learner_run_resumes_a_mid_batch_checkpoint(self, mm):
        session, broker = _start_session(mm, sequential_plan(5))
        self._advance_to_learning(session, broker)
        requests = session.ask(3)
        session.tell(broker.measure(requests[0]))
        clone = pickle.loads(pickle.dumps(session))

        learner = ActiveLearner(
            mm, plan=sequential_plan(5), config=SMALL,
            rng=np.random.default_rng(0),
        )
        result = learner.run(_test_set(mm), resume=clone, batch_size=3)
        assert result.training_examples == SMALL.max_training_examples


class TestBatchSemantics:
    def test_batch_members_are_distinct_configurations(self, mm):
        for strategy in BATCH_STRATEGIES:
            session, broker = _start_session(
                mm, sequential_plan(5), make_acquisition(strategy)
            )
            while session.phase == "seeding":
                session.tell(broker.measure(session.ask()))
            requests = session.ask(5)
            configurations = [r.configuration for r in requests]
            assert len(set(configurations)) == len(configurations) == 5

    def test_batch_truncates_at_the_example_budget(self, mm):
        config = dataclasses.replace(SMALL, max_training_examples=SMALL.n_initial + 2)
        session, broker = _start_session(mm, sequential_plan(5), config=config)
        while session.phase == "seeding":
            session.tell(broker.measure(session.ask()))
        requests = session.ask(5)
        assert len(requests) == 2
        for result in measure_batch(broker, requests):
            session.tell(result)
        assert session.ask(5) == []
        assert session.done

    def test_seeding_batch_never_crosses_the_phase_boundary(self, mm):
        session, broker = _start_session(mm, sequential_plan(5))
        requests = session.ask(10)
        assert len(requests) == SMALL.n_initial
        for result in measure_batch(broker, requests):
            session.tell(result)
        assert session.phase == "learning"

    def test_duplicate_tell_rejected(self, mm):
        session, broker = _start_session(mm, sequential_plan(5))
        requests = session.ask(3)
        result = broker.measure(requests[0])
        session.tell(result)
        with pytest.raises(ValueError, match="duplicate"):
            session.tell(result)

    def test_foreign_configuration_rejected(self, mm):
        from repro.measurement.broker import MeasurementResult

        session, _ = _start_session(mm, sequential_plan(5))
        requests = session.ask(2)
        foreign = tuple(v + 1 for v in requests[0].configuration)
        if foreign in {r.configuration for r in requests}:
            foreign = tuple(v + 2 for v in requests[0].configuration)
        with pytest.raises(ValueError, match="not part of"):
            session.tell(
                MeasurementResult(configuration=foreign, runtimes=(1.0,))
            )

    def test_ask_rejected_while_batch_outstanding(self, mm):
        session, broker = _start_session(mm, sequential_plan(5))
        requests = session.ask(2)
        with pytest.raises(RuntimeError, match="outstanding"):
            session.ask(2)
        session.tell(broker.measure(requests[0]))
        with pytest.raises(RuntimeError, match="outstanding"):
            session.ask()

    def test_batch_ask_after_done_returns_empty_list(self, mm):
        config = dataclasses.replace(SMALL, max_training_examples=SMALL.n_initial + 1)
        session, broker = _start_session(mm, sequential_plan(5), config=config)
        while (batch := session.ask(2)):
            for result in measure_batch(broker, batch):
                session.tell(result)
        assert session.done
        assert session.ask(2) == []
        assert session.ask() is None


def _tiny_scale(**overrides):
    scale = ExperimentScale.smoke()
    learner = dataclasses.replace(
        scale.learner,
        max_training_examples=14,
        tree_particles=6,
        n_candidates=12,
        reference_size=8,
        evaluation_interval=4,
    )
    params = dict(benchmarks=("mm",), repetitions=1, learner=learner)
    params.update(overrides)
    return dataclasses.replace(scale, **params)


class TestBatchAcquisitionArtifact:
    def test_in_memory_arm_covers_the_full_grid(self):
        result = run_artifacts(_tiny_scale(), ["batch-acquisition"])[
            "batch-acquisition"
        ]
        variants = {row.variant for row in result.rows}
        assert variants == {
            f"k{k}-{s}" for k in (1, 2, 5) for s in BATCH_STRATEGIES
        }
        reference_rows = [
            row for row in result.rows if row.variant == "k1-greedy-alc-fantasy"
        ]
        assert all(row.cost_ratio_vs_reference == 1.0 for row in reference_rows)
        rendered = result.render()
        assert "batch strategy" in rendered and "k5-diversity-penalty" in rendered

    def test_sharded_runner_runs_the_arm_end_to_end(self, tmp_path):
        report = run_paper_run(
            _tiny_scale(),
            run_dir=tmp_path / "run",
            artifacts=["batch-acquisition"],
            checkpoint_interval=5,
            progress=lambda line: None,
        )
        assert "Batch acquisition ablation" in report or "batch strategy" in report

    @pytest.mark.parametrize("strategy", BATCH_STRATEGIES)
    def test_run_driver_completes_with_batches(self, mm, strategy):
        learner = ActiveLearner(
            mm,
            plan=sequential_plan(5),
            acquisition=make_acquisition(strategy),
            config=SMALL,
            rng=np.random.default_rng(9),
        )
        result = learner.run(_test_set(mm), batch_size=5)
        assert result.training_examples == SMALL.max_training_examples
        assert result.curve.points[-1].training_examples == SMALL.max_training_examples
