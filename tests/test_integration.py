"""Cross-module integration tests.

These exercise the whole stack — SPAPT kernel -> transformations -> machine
model -> noisy profiler -> dynamic tree -> active learner -> comparison —
and assert the qualitative properties the paper's evaluation rests on.
They are deliberately small (smoke scale) so the suite stays fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.comparison import ComparisonConfig, compare_sampling_plans
from repro.core.evaluation import build_test_set, evaluate_rmse
from repro.core.learner import ActiveLearner, LearnerConfig
from repro.core.plans import fixed_plan, sequential_plan
from repro.ir.transforms import CacheTile, LoopUnroll, TransformPipeline, UnrollAndJam
from repro.machine.cost_model import MachineCostModel
from repro.measurement.profiler import Profiler
from repro.spapt.suite import get_benchmark

CONFIG = LearnerConfig(
    n_initial=4,
    seed_observations=5,
    n_candidates=20,
    max_training_examples=45,
    reference_size=12,
    evaluation_interval=8,
    tree_particles=12,
)


class TestTransformToCostPipeline:
    def test_transformed_ir_and_cost_model_agree_on_structure(self, mm_benchmark):
        """Lowering a configuration through the real IR passes matches the
        closed forms the cost model uses for the same configuration."""
        space = mm_benchmark.search_space
        names = [p.name for p in space.parameters]
        configuration = list(space.default_configuration())
        configuration[names.index("U_k")] = 4
        configuration[names.index("RT_i")] = 2
        configuration[names.index("T_j")] = 64
        lowered = space.to_transform_configuration(configuration)

        pipeline = TransformPipeline(
            [
                CacheTile(("j",), (64,)),
                UnrollAndJam("i", 2),
                LoopUnroll("k", 4),
            ]
        )
        transformed = pipeline(mm_benchmark.kernel)
        from repro.ir.analysis import innermost_bodies

        generated_statements = innermost_bodies(transformed)[0].statements
        model = MachineCostModel(mm_benchmark.kernel)
        assert generated_statements == model._unroll_product(model._bodies[0], lowered)

    def test_profiler_cost_reflects_runtime_and_compile_scale(self, mm_benchmark):
        profiler = Profiler(mm_benchmark, rng=np.random.default_rng(0))
        configuration = mm_benchmark.search_space.default_configuration()
        profiler.measure(configuration, repetitions=5)
        expected_runtime = 5 * mm_benchmark.true_runtime(configuration)
        assert profiler.ledger.runtime_seconds == pytest.approx(expected_runtime, rel=0.2)
        assert profiler.ledger.compile_seconds == pytest.approx(
            mm_benchmark.compile_time(configuration)
        )


class TestLearningQuality:
    def test_active_learner_produces_useful_model(self, mm_benchmark):
        """After a short run the model must predict clearly better than a
        global-mean predictor on held-out configurations."""
        rng = np.random.default_rng(21)
        test_set = build_test_set(mm_benchmark, size=60, observations=4, rng=rng)
        learner = ActiveLearner(
            mm_benchmark, plan=sequential_plan(8), config=CONFIG, rng=rng
        )
        result = learner.run(test_set)
        final_rmse = result.curve.points[-1].rmse
        baseline_rmse = float(np.std(test_set.mean_runtimes))
        assert final_rmse < baseline_rmse

    def test_variable_plan_costs_less_than_fixed_35(self, mm_benchmark):
        """For the same number of training examples the variable plan must
        charge far less profiling cost than the 35-observation baseline."""
        rng = np.random.default_rng(5)
        test_set = build_test_set(mm_benchmark, size=40, observations=3, rng=rng)
        fixed_result = ActiveLearner(
            mm_benchmark, plan=fixed_plan(35), config=CONFIG, rng=np.random.default_rng(1)
        ).run(test_set)
        variable_result = ActiveLearner(
            mm_benchmark, plan=sequential_plan(35), config=CONFIG, rng=np.random.default_rng(1)
        ).run(test_set)
        assert variable_result.total_cost_seconds < fixed_result.total_cost_seconds
        assert variable_result.total_observations < fixed_result.total_observations

    def test_comparison_speedup_positive_on_quiet_benchmark(self):
        lu = get_benchmark("lu")
        config = ComparisonConfig(
            learner=CONFIG, repetitions=1, test_size=40, test_observations=3, seed=3
        )
        comparison = compare_sampling_plans(lu, config=config)
        # On a near-noise-free benchmark the variable plan must reach the
        # common error level at least as cheaply as the 35-sample baseline.
        assert comparison.speedup("all observations", "variable observations") >= 1.0

    def test_noisy_benchmark_single_observation_struggles(self):
        """On the noisiest benchmark (correlation), the final error of the
        single-observation plan should not beat the 35-observation baseline
        (Figure 6c's qualitative message)."""
        correlation = get_benchmark("correlation")
        rng = np.random.default_rng(17)
        test_set = build_test_set(correlation, size=50, observations=10, rng=rng)
        config = LearnerConfig(
            n_initial=4,
            seed_observations=10,
            n_candidates=20,
            max_training_examples=50,
            reference_size=12,
            evaluation_interval=10,
            tree_particles=12,
        )
        one = ActiveLearner(
            correlation, plan=fixed_plan(1), config=config, rng=np.random.default_rng(2)
        ).run(test_set)
        many = ActiveLearner(
            correlation, plan=fixed_plan(10), config=config, rng=np.random.default_rng(2)
        ).run(test_set)
        assert many.curve.best_error <= one.curve.best_error * 1.5

    def test_rmse_of_final_model_close_to_truth_on_quiet_benchmark(self):
        mvt = get_benchmark("mvt")
        rng = np.random.default_rng(8)
        test_set = build_test_set(mvt, size=50, observations=3, rng=rng)
        learner = ActiveLearner(mvt, plan=sequential_plan(5), config=CONFIG, rng=rng)
        result = learner.run(test_set)
        spread = float(test_set.mean_runtimes.max() - test_set.mean_runtimes.min())
        assert result.curve.best_error < spread
