"""Tests for the measurement-noise substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.measurement.noise import (
    FrequencyDrift,
    GaussianJitter,
    HeavyTailedSpikes,
    HeteroskedasticLayoutNoise,
    LognormalInterference,
    NoiseModel,
    NoiseProfile,
    noise_model_from_profile,
)


class TestComponents:
    def test_lognormal_zero_sigma_is_identity(self, rng):
        component = LognormalInterference(sigma=0.0)
        assert component.apply(2.0, rng) == 2.0

    def test_lognormal_perturbs(self, rng):
        component = LognormalInterference(sigma=0.05)
        values = [component.apply(2.0, rng) for _ in range(200)]
        assert np.std(values) > 0
        assert all(v > 0 for v in values)

    def test_jitter_keeps_positive(self, rng):
        component = GaussianJitter(sigma_seconds=10.0)
        values = [component.apply(0.001, rng) for _ in range(100)]
        assert all(v > 0 for v in values)

    def test_spikes_only_slow_down(self, rng):
        component = HeavyTailedSpikes(probability=1.0, scale=0.5)
        values = [component.apply(1.0, rng) for _ in range(100)]
        assert all(v >= 1.0 for v in values)

    def test_spikes_rare_when_probability_low(self, rng):
        component = HeavyTailedSpikes(probability=0.0)
        assert component.apply(1.0, rng) == 1.0

    def test_layout_noise_scales_with_sensitivity(self, rng):
        component = HeteroskedasticLayoutNoise(sigma_low=0.001, sigma_high=0.2)
        quiet = [component.apply(1.0, rng, sensitivity=0.0) for _ in range(300)]
        noisy = [component.apply(1.0, rng, sensitivity=1.0) for _ in range(300)]
        assert np.std(noisy) > np.std(quiet) * 3

    def test_drift_is_bounded(self, rng):
        component = FrequencyDrift(step_sigma=0.01, max_deviation=0.03)
        values = [component.apply(1.0, rng) for _ in range(500)]
        assert max(values) <= 1.03 + 1e-9
        assert min(values) >= 0.97 - 1e-9


class TestNoiseModel:
    def test_noiseless_model_returns_truth(self, rng):
        model = NoiseModel.noiseless()
        assert model.observe(1.234, rng) == 1.234

    def test_rejects_non_positive_runtime(self, rng):
        model = NoiseModel.noiseless()
        with pytest.raises(ValueError):
            model.observe(0.0, rng)
        with pytest.raises(ValueError):
            model.observe(-1.0, rng)
        with pytest.raises(ValueError):
            model.observe(float("nan"), rng)

    def test_observe_many_shape(self, rng):
        model = noise_model_from_profile(NoiseProfile())
        values = model.observe_many(1.0, 17, rng)
        assert values.shape == (17,)
        assert np.all(values > 0)

    def test_observe_many_rejects_zero_count(self, rng):
        model = NoiseModel.noiseless()
        with pytest.raises(ValueError):
            model.observe_many(1.0, 0, rng)

    def test_reproducible_with_same_seed(self):
        model = noise_model_from_profile(NoiseProfile())
        a = model.observe_many(1.0, 20, np.random.default_rng(7))
        model2 = noise_model_from_profile(NoiseProfile())
        b = model2.observe_many(1.0, 20, np.random.default_rng(7))
        np.testing.assert_allclose(a, b)

    def test_noise_scales_multiplicatively(self, rng):
        """Bigger runtimes should have proportionally bigger absolute noise."""
        model = noise_model_from_profile(
            NoiseProfile(interference_sigma=0.05, spike_probability=0.0, jitter_seconds=0.0)
        )
        small = model.observe_many(0.1, 500, np.random.default_rng(3))
        large = model.observe_many(10.0, 500, np.random.default_rng(3))
        assert np.std(large) > np.std(small) * 50

    def test_profile_with_drift_adds_component(self):
        without = noise_model_from_profile(NoiseProfile(drift_sigma=0.0))
        with_drift = noise_model_from_profile(NoiseProfile(drift_sigma=0.01))
        assert len(with_drift.components) == len(without.components) + 1


class TestCalibration:
    def test_quiet_vs_noisy_profiles(self):
        """A correlation-like profile must be far noisier than an mvt-like one."""
        quiet = noise_model_from_profile(
            NoiseProfile(interference_sigma=0.0008, layout_sigma_high=0.005,
                         spike_probability=0.002)
        )
        noisy = noise_model_from_profile(
            NoiseProfile(interference_sigma=0.03, layout_sigma_high=0.28,
                         spike_probability=0.06, spike_scale=0.35)
        )
        rng_a = np.random.default_rng(1)
        rng_b = np.random.default_rng(1)
        quiet_obs = quiet.observe_many(1.0, 800, rng_a, sensitivity=0.5)
        noisy_obs = noisy.observe_many(1.0, 800, rng_b, sensitivity=0.5)
        assert np.var(noisy_obs) > np.var(quiet_obs) * 100
