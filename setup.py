"""Setuptools entry point.

The project metadata lives in ``pyproject.toml``; this shim exists so that
``pip install -e .`` also works on older toolchains (setuptools without
``wheel``/PEP-660 editable support), such as fully offline environments.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Minimizing the Cost of Iterative Compilation with "
        "Active Learning' (CGO 2017)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy"],
    extras_require={
        # Optional JIT backend for the SMC update kernels
        # (DynamicTreeConfig(backend="numba"); see docs/architecture.md).
        # Everything falls back to the bit-identical NumPy kernels when
        # numba is not installed.
        "jit": ["numba"],
    },
)
